package prune

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/rdf"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

func fig1a(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("B._De_Palma", "directed", "Mission:_Impossible"),
		rdf.T("B._De_Palma", "awarded", "Oscar"),
		rdf.T("B._De_Palma", "born_in", "Newark"),
		rdf.T("B._De_Palma", "worked_with", "D._Koepp"),
		rdf.T("Mission:_Impossible", "genre", "Action"),
		rdf.T("Goldfinger", "genre", "Action"),
		rdf.T("G._Hamilton", "directed", "Goldfinger"),
		rdf.T("G._Hamilton", "born_in", "Paris"),
		rdf.T("G._Hamilton", "worked_with", "H._Saltzman"),
		rdf.T("H._Saltzman", "born_in", "Saint_John"),
		rdf.T("T._Young", "directed", "From_Russia_with_Love"),
		rdf.T("P.R._Hunt", "worked_with", "D._Koepp"),
		rdf.T("D._Koepp", "directed", "Mortdecai"),
		rdf.TL("Saint_John", "population", "70063"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustPrune(t *testing.T, st *storage.Store, src string) (*Pruning, *core.QueryRelation) {
	t.Helper()
	p, rel, err := PruneQuery(st, sparql.MustParse(src), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p, rel
}

const queryX1 = `
SELECT * WHERE {
  ?director directed ?movie .
  ?director worked_with ?coworker . }`

const queryX2 = `
SELECT * WHERE {
  ?director directed ?movie .
  OPTIONAL { ?director worked_with ?coworker . } }`

// TestX1Pruning: the (X1) dual simulation keeps exactly the 4 triples of
// the two result subgraphs (relation (2) projected onto triples).
func TestX1Pruning(t *testing.T) {
	st := fig1a(t)
	p, _ := mustPrune(t, st, queryX1)
	if p.Kept != 4 {
		t.Fatalf("kept = %d, want 4", p.Kept)
	}
	if p.Total != st.NumTriples() {
		t.Fatalf("total = %d", p.Total)
	}
	if p.Ratio() < 0.7 {
		t.Fatalf("ratio = %f", p.Ratio())
	}
	// The pruned store contains the bold subgraphs of Fig. 1(a).
	ps := p.Store()
	if ps.NumTriples() != 4 {
		t.Fatalf("pruned store has %d triples", ps.NumTriples())
	}
	directed, _ := ps.PredIDOf("directed")
	if ps.PredCount(directed) != 2 {
		t.Fatalf("directed kept = %d, want 2", ps.PredCount(directed))
	}
}

// TestX2Pruning: the optional extension additionally keeps the directed
// triples of D. Koepp and T. Young (the semi-thick subgraphs), but only
// the two anchored worked_with triples.
func TestX2Pruning(t *testing.T) {
	st := fig1a(t)
	p, _ := mustPrune(t, st, queryX2)
	if p.Kept != 6 {
		t.Fatalf("kept = %d, want 6 (4 directed + 2 worked_with)", p.Kept)
	}
	ps := p.Store()
	directed, _ := ps.PredIDOf("directed")
	ww, _ := ps.PredIDOf("worked_with")
	if ps.PredCount(directed) != 4 || ps.PredCount(ww) != 2 {
		t.Fatalf("directed/worked_with = %d/%d, want 4/2",
			ps.PredCount(directed), ps.PredCount(ww))
	}
}

// TestEmptyQueryPrunesEverything: queries with an unsatisfiable mandatory
// core leave 0 triples — the paper's D1/B4/B15 behaviour.
func TestEmptyQueryPrunesEverything(t *testing.T) {
	st := fig1a(t)
	p, rel := mustPrune(t, st, `SELECT * WHERE { ?x no_such_pred ?y . ?x directed ?z }`)
	if !rel.Empty() {
		t.Fatal("relation should be empty")
	}
	if p.Kept != 0 {
		t.Fatalf("kept = %d, want 0", p.Kept)
	}
	if p.Ratio() != 1 {
		t.Fatalf("ratio = %f, want 1", p.Ratio())
	}
}

// TestRequiredTriples: (X1) has two matches touching 4 distinct triples.
func TestRequiredTriples(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(queryX1)
	got, err := RequiredCount(context.Background(), st, q, engine.NewHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("required = %d, want 4", got)
	}
	// Required ⊆ kept must hold (Theorem 1 projected onto triples).
	p, _ := mustPrune(t, st, queryX1)
	if p.Kept < 4 {
		t.Fatal("kept fewer than required")
	}
}

// TestRequiredTriplesOptional: (X2)'s four matches touch 6 triples; the
// optional parts of unmatched directors contribute nothing.
func TestRequiredTriplesOptional(t *testing.T) {
	st := fig1a(t)
	q := sparql.MustParse(queryX2)
	got, err := RequiredCount(context.Background(), st, q, engine.NewHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("required = %d, want 6", got)
	}
}

// prunedOutcome evaluates q on the full and on the pruned store and
// reports the two invariants the paper's Theorem 2 supports:
//
//   - sound: the full result projected onto mand(Q) is contained in the
//     pruned result's projection (no match's mandatory core is lost);
//   - exact: the result sets coincide — guaranteed for well-designed
//     patterns. Non-well-designed nested optionals may legitimately see
//     their optional extensions differ on the pruned store: pruning can
//     remove the cross-product "filter" structure that prevented an
//     optional part from joining (see
//     TestNonWellDesignedPromotionNuance).
func prunedOutcome(t testing.TB, st *storage.Store, q *sparql.Query) (sound, exact bool) {
	p, _, err := PruneQuery(st, q, core.Config{})
	if err != nil {
		t.Fatalf("prune: %v", err)
	}
	eng := engine.NewHashJoin()
	full, err := eng.Evaluate(context.Background(), st, q)
	if err != nil {
		t.Fatalf("full eval: %v", err)
	}
	pruned, err := eng.Evaluate(context.Background(), p.Store(), q)
	if err != nil {
		t.Fatalf("pruned eval: %v", err)
	}
	mand := sparql.Mand(q.Expr)
	var mandVars []string
	for v := range mand {
		mandVars = append(mandVars, v)
	}
	return projectionSubset(full, pruned, mandVars), full.Equal(pruned)
}

// projectionSubset reports whether a's rows projected onto vars all occur
// among b's projected rows.
func projectionSubset(a, b *engine.Result, vars []string) bool {
	pa := a.Project(vars)
	pb := b.Project(vars)
	seen := make(map[string]bool, len(pb.Rows))
	for _, row := range pb.Rows {
		seen[fmt.Sprint(row)] = true
	}
	for _, row := range pa.Rows {
		if !seen[fmt.Sprint(row)] {
			return false
		}
	}
	return true
}

func TestPrunedEvaluationExactOnPaperQueries(t *testing.T) {
	st := fig1a(t)
	for _, src := range []string{
		queryX1,
		queryX2,
		`SELECT * WHERE { ?c born_in ?p . ?p population ?n }`,
		`SELECT * WHERE { ?m genre <Action> OPTIONAL { ?d directed ?m } }`,
		`SELECT * WHERE { { ?x directed ?y } UNION { ?x worked_with ?y } }`,
		`SELECT * WHERE { { ?d directed ?m OPTIONAL { ?d born_in ?c } } { ?d worked_with ?w } }`,
		`SELECT * WHERE { OPTIONAL { ?d awarded ?a } }`,
	} {
		sound, exact := prunedOutcome(t, st, sparql.MustParse(src))
		if !sound || !exact {
			t.Fatalf("pruned result differs for %s (sound=%v exact=%v)", src, sound, exact)
		}
	}
}

// randomQuery mirrors the engine test generator (AND/OPTIONAL/UNION with
// shared variables and constants, constant predicates only).
func randomQuery(r *rand.Rand, depth, vars, preds int) sparql.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		n := r.Intn(2) + 1
		bgp := make(sparql.BGP, n)
		for i := range bgp {
			bgp[i] = sparql.TriplePattern{
				S: randTerm(r, vars),
				P: sparql.C(fmt.Sprintf("p%d", r.Intn(preds))),
				O: randTerm(r, vars),
			}
		}
		return bgp
	}
	l := randomQuery(r, depth-1, vars, preds)
	rr := randomQuery(r, depth-1, vars, preds)
	switch r.Intn(4) {
	case 0, 1:
		return sparql.And{L: l, R: rr}
	case 2:
		return sparql.Optional{L: l, R: rr}
	default:
		return sparql.Union{L: l, R: rr}
	}
}

func randTerm(r *rand.Rand, vars int) sparql.Term {
	if r.Intn(6) == 0 {
		return sparql.C(fmt.Sprintf("n%d", r.Intn(6)))
	}
	return sparql.V(fmt.Sprintf("v%d", r.Intn(vars)))
}

func randomTriples(r *rand.Rand, nodes, preds, edges int) []rdf.Triple {
	ts := make([]rdf.Triple, edges)
	for i := range ts {
		ts[i] = rdf.T(
			fmt.Sprintf("n%d", r.Intn(nodes)),
			fmt.Sprintf("p%d", r.Intn(preds)),
			fmt.Sprintf("n%d", r.Intn(nodes)))
	}
	return ts
}

// TestPropertyPrunedEvaluationSound is the repository's central soundness
// invariant (Theorem 2 put to work): for random data and random queries
// over BGP/AND/OPTIONAL/UNION, every full-store mapping's mandatory core
// survives on the pruned store; for well-designed queries the result
// sets are identical.
func TestPropertyPrunedEvaluationSound(t *testing.T) {
	exactChecked := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriples(r, 8, 3, 20))
		if err != nil {
			return false
		}
		q := &sparql.Query{Expr: randomQuery(r, 2, 4, 3)}
		sound, exact := prunedOutcome(t, st, q)
		if !sound {
			t.Logf("seed %d UNSOUND query %s", seed, q)
			return false
		}
		if sparql.IsWellDesigned(q.Expr) && !sparql.HasUnion(q.Expr) {
			exactChecked++
			if !exact {
				t.Logf("seed %d INEXACT well-designed query %s", seed, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if exactChecked < 50 {
		t.Fatalf("only %d well-designed exactness checks; generator drifted", exactChecked)
	}
}

// TestPropertyRequiredSubsetOfKept: every triple of every match survives
// pruning (the triple-level reading of soundness).
func TestPropertyRequiredSubsetOfKept(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st, err := storage.FromTriples(randomTriples(r, 8, 3, 20))
		if err != nil {
			return false
		}
		q := &sparql.Query{Expr: randomQuery(r, 2, 4, 3)}
		p, _, err := PruneQuery(st, q, core.Config{})
		if err != nil {
			t.Fatalf("prune: %v", err)
		}
		refs, err := Required(context.Background(), st, q, engine.NewHashJoin())
		if err != nil {
			t.Fatalf("required: %v", err)
		}
		ps := p.Store()
		for _, ref := range refs {
			if !ps.HasTriple(ref.S, ref.P, ref.O) {
				t.Logf("seed %d: required triple %v missing after pruning, query %s",
					seed, ref, q)
				return false
			}
		}
		return p.Kept >= len(refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRequiredPromotedRowCoincidence is a regression test: a promoted
// row (optional part unmatched) binds ?v1 through the mandatory part,
// and ?v1 coincidentally satisfies ONE of the two BGPs of the optional
// part. That triple is not required — the optional side as a whole did
// not match (its second BGP demands a self-loop ?v1 lacks).
func TestRequiredPromotedRowCoincidence(t *testing.T) {
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("s", "p1", "a"),
		rdf.T("a", "p0", "k"),
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT * WHERE {
	  ?v2 <p1> ?v1
	  OPTIONAL { { ?v1 <p0> <k> } { ?v1 <p1> ?v1 } } }`)
	refs, err := Required(context.Background(), st, q, engine.NewHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("required = %d triples, want only (s,p1,a): %v", len(refs), refs)
	}
	p1, _ := st.PredIDOf("p1")
	if refs[0].P != p1 {
		t.Fatalf("wrong required triple: %v", refs[0])
	}
	// And the matched-optional variant IS counted: add the self-loop.
	st2, err := storage.FromTriples([]rdf.Triple{
		rdf.T("s", "p1", "a"),
		rdf.T("a", "p0", "k"),
		rdf.T("a", "p1", "a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	refs2, err := Required(context.Background(), st2, q, engine.NewHashJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs2) != 3 {
		t.Fatalf("required = %d distinct triples, want all 3: %v", len(refs2), refs2)
	}
}

// TestNonWellDesignedPromotionNuance pins the subtle behaviour the
// random property test uncovered: in a NON-well-designed nested optional,
// an inner optional pattern over otherwise-unconnected variables acts as
// a cross-product filter. Pruning (soundly, per Definition 3) removes
// that pattern's triples, so on the pruned store the formerly blocked
// optional part joins, and the promoted row comes back *extended*. The
// paper's binding-containment soundness holds; row-level result equality
// does not — this is exactly why the paper formulates soundness at the
// level of variable bindings.
func TestNonWellDesignedPromotionNuance(t *testing.T) {
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("c", "p2", "n3"), // L: v0 = c
		rdf.T("a", "p0", "b"),  // L: v1 = a, v3 = b
		rdf.T("a", "p2", "d"),  // B1: v1 = a, v2 = d
		rdf.T("x", "p1", "y"),  // B2: (v3, v0) = (x, y) ≠ (b, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT * WHERE {
	  { ?v0 <p2> <n3> . ?v1 <p0> ?v3 . }
	  OPTIONAL { { ?v1 <p2> ?v2 . } OPTIONAL { ?v3 <p1> ?v0 . } } }`)
	if sparql.IsWellDesigned(q.Expr) {
		t.Fatal("fixture must be non-well-designed")
	}
	eng := engine.NewHashJoin()
	full, err := eng.Evaluate(context.Background(), st, q)
	if err != nil {
		t.Fatal(err)
	}
	// On the full store, B2's (x,p1,y) is incompatible with v3=b, v0=c,
	// and since B1 × B2 has no compatible row, v2 stays unbound.
	if full.Len() != 1 || full.Rows[0][full.VarIndex("v2")] != engine.Unbound {
		t.Fatalf("unexpected full result:\n%s", full.Format(st))
	}
	p, _, err := PruneQuery(st, q, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := eng.Evaluate(context.Background(), p.Store(), q)
	if err != nil {
		t.Fatal(err)
	}
	// On the pruned store the p1 filter is gone and v2 binds to d.
	if pruned.Len() != 1 || pruned.Rows[0][pruned.VarIndex("v2")] == engine.Unbound {
		t.Fatalf("unexpected pruned result:\n%s", pruned.Format(st))
	}
	// The paper's soundness: mandatory-core bindings are preserved.
	if !projectionSubset(full, pruned, []string{"v0", "v1", "v3"}) {
		t.Fatal("mandatory core lost")
	}
	// And Theorem 1 at the binding level: every full binding is in χS.
	rel, err := core.QueryDualSimulation(st, q, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for vi, v := range full.Vars {
		set := rel.VarSet(v)
		for _, row := range full.Rows {
			if row[vi] != engine.Unbound && !set.Get(int(row[vi])) {
				t.Fatalf("binding %s=%d escapes χS", v, row[vi])
			}
		}
	}
}

// TestPruneWithShortCircuit: the ShortCircuit configuration must not
// change what is kept for satisfiable queries.
func TestPruneWithShortCircuit(t *testing.T) {
	st := fig1a(t)
	p1, _, err := PruneQuery(st, sparql.MustParse(queryX2), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := PruneQuery(st, sparql.MustParse(queryX2), core.Config{ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Kept != p2.Kept {
		t.Fatalf("short-circuit changed kept: %d vs %d", p1.Kept, p2.Kept)
	}
}
