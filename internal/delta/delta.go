// Package delta turns the immutable-snapshot storage layer into a live
// graph database: an Overlay maintains a mutable write layer — staged
// adds and tombstoned deletes — over an immutable base storage.Store and
// publishes a fresh epoch-numbered snapshot per batch of mutations.
//
// Reads never consult the overlay: every Apply produces a complete
// snapshot via storage.Patch, whose per-predicate copy-on-write index
// maintenance keeps the cost proportional to the touched predicates, not
// the store. Readers therefore keep the plain Store interface (and the
// solver its bit-matrix kernels), while in-flight queries pin whichever
// snapshot they started on — MVCC with a single writer.
//
// The overlay ledger exists for hygiene: patched snapshots share an
// append-only dictionary, so deleted triples release their index space
// but dictionary entries (and the per-predicate sort orders' slack)
// accumulate. Once the ledger crosses the compaction threshold — or on
// demand — Compact rebuilds a pristine store with a fresh dictionary and
// resets the ledger. This mirrors the maintenance regime of external-
// memory bisimulation updates (Luo et al.): cheap incremental patches,
// periodic consolidation.
package delta

import (
	"fmt"
	"sync"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

// Delta is one batch of mutations. Dels are applied before Adds: a
// triple occurring in both ends up present. Deleting an absent triple
// and re-adding a present one are no-ops.
type Delta struct {
	Adds, Dels []rdf.Triple
}

// Result reports one Apply or Compact.
type Result struct {
	// Epoch is the epoch of the published snapshot. Epochs start at 0
	// for the base store and increase by one per Apply or explicit
	// Compact.
	Epoch uint64
	// Added and Deleted count the effective triple changes (after no-op
	// elimination).
	Added, Deleted int
	// OverlaySize is the ledger size — staged adds plus tombstones
	// relative to the last compacted base — after the operation.
	OverlaySize int
	// Compacted reports that the operation rebuilt the store from
	// scratch (threshold crossed, or Compact was called).
	Compacted bool
	// NoOp reports that the delta was empty: the current snapshot was
	// returned unchanged and the epoch did not advance.
	NoOp bool
	// Patch carries the storage-level maintenance statistics of the
	// incremental path (zero value when the operation compacted).
	Patch storage.PatchStats
}

// Overlay is a single-writer mutable view over a store lineage. All
// methods are safe for concurrent use; mutations are serialized
// internally. Readers obtain immutable snapshots via Current and are
// never blocked by a writer.
type Overlay struct {
	mu        sync.Mutex
	base      *storage.Store // last compacted store
	cur       *storage.Store // published snapshot = base ⊕ ledger
	epoch     uint64
	adds      map[tripleKey]bool // staged adds absent from base
	dels      map[tripleKey]bool // tombstoned base triples
	threshold int
	compacted int
}

// tripleKey identifies a triple across dictionaries.
type tripleKey struct{ s, p, o string }

func keyOf(t rdf.Triple) tripleKey {
	return tripleKey{s: t.S.Key(), p: t.P, o: t.O.Key()}
}

// New wraps a built store. threshold > 0 arms automatic compaction once
// the ledger holds that many entries; threshold = 0 leaves compaction to
// explicit Compact calls.
func New(base *storage.Store, threshold int) (*Overlay, error) {
	return NewAt(base, threshold, 0)
}

// NewAt is New with an explicit starting epoch — the warm-restart hook:
// a store recovered from a durable snapshot resumes its epoch sequence
// where the previous process left off instead of restarting from 0, so
// clients tracking epochs never observe time moving backwards.
func NewAt(base *storage.Store, threshold int, epoch uint64) (*Overlay, error) {
	if base == nil {
		return nil, fmt.Errorf("delta: nil base store")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("delta: negative compaction threshold %d", threshold)
	}
	return &Overlay{
		base:      base,
		cur:       base,
		epoch:     epoch,
		adds:      make(map[tripleKey]bool),
		dels:      make(map[tripleKey]bool),
		threshold: threshold,
	}, nil
}

// Current returns the published snapshot and its epoch.
func (o *Overlay) Current() (*storage.Store, uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cur, o.epoch
}

// Epoch returns the current epoch.
func (o *Overlay) Epoch() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// Size returns the ledger size: staged adds plus tombstones relative to
// the last compacted base.
func (o *Overlay) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.adds) + len(o.dels)
}

// Compactions returns how many times the overlay has compacted.
func (o *Overlay) Compactions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.compacted
}

// Apply stages the delta and publishes a new snapshot at the next epoch.
// The call is atomic: on error (an ill-formed triple) nothing changes,
// not even the shared dictionary. When the ledger crosses the threshold
// the new snapshot is additionally compacted before publication; the
// whole operation still advances the epoch exactly once.
func (o *Overlay) Apply(d Delta) (*storage.Store, Result, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	// An empty delta is a no-op: publishing a fresh epoch for it would
	// only invalidate cached plans and force re-planning for a snapshot
	// that is bit-identical to the current one.
	if len(d.Adds) == 0 && len(d.Dels) == 0 {
		return o.cur, Result{
			Epoch:       o.epoch,
			OverlaySize: len(o.adds) + len(o.dels),
			NoOp:        true,
		}, nil
	}
	next, ps, err := o.cur.Patch(d.Adds, d.Dels)
	if err != nil {
		return nil, Result{Epoch: o.epoch, OverlaySize: len(o.adds) + len(o.dels)}, err
	}

	// Ledger maintenance, relative to the compacted base: a delete of a
	// staged add un-stages it, an add of a tombstoned triple cancels the
	// tombstone; only genuine deviations from base are recorded.
	for _, t := range d.Dels {
		k := keyOf(t)
		switch {
		case o.adds[k]:
			delete(o.adds, k)
		case baseHas(o.base, t):
			o.dels[k] = true
		}
	}
	for _, t := range d.Adds {
		k := keyOf(t)
		switch {
		case o.dels[k]:
			delete(o.dels, k)
		case !baseHas(o.base, t):
			o.adds[k] = true
		}
	}

	o.cur = next
	o.epoch++
	res := Result{
		Epoch:       o.epoch,
		Added:       ps.Added,
		Deleted:     ps.Deleted,
		OverlaySize: len(o.adds) + len(o.dels),
		Patch:       ps,
	}
	if o.threshold > 0 && res.OverlaySize >= o.threshold {
		if err := o.compactLocked(); err != nil {
			return nil, res, err
		}
		res.Compacted = true
		res.OverlaySize = 0
		// The incremental patch was subsumed by the rebuild; its
		// maintenance stats (and node ids!) no longer describe the
		// published snapshot.
		res.Patch = storage.PatchStats{}
	}
	return o.cur, res, nil
}

// Compact rebuilds the current snapshot into a pristine store with a
// fresh dictionary (reclaiming tombstoned triples' and dead terms'
// space), resets the ledger, and publishes it at the next epoch. Node
// ids are NOT stable across a compaction — anything keyed by them
// (plans, partitions, lifted candidate vectors) must be rebuilt.
func (o *Overlay) Compact() (*storage.Store, Result, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.compactLocked(); err != nil {
		return nil, Result{Epoch: o.epoch}, err
	}
	o.epoch++
	return o.cur, Result{
		Epoch:     o.epoch,
		Compacted: true,
	}, nil
}

func (o *Overlay) compactLocked() error {
	fresh, err := storage.FromTriples(o.cur.Triples())
	if err != nil {
		return fmt.Errorf("delta: compaction rebuild: %w", err)
	}
	o.base = fresh
	o.cur = fresh
	o.adds = make(map[tripleKey]bool)
	o.dels = make(map[tripleKey]bool)
	o.compacted++
	return nil
}

// baseHas reports membership of a decoded triple in the base store.
func baseHas(st *storage.Store, t rdf.Triple) bool {
	s, okS := st.TermID(t.S)
	p, okP := st.PredIDOf(t.P)
	o, okO := st.TermID(t.O)
	return okS && okP && okO && st.HasTriple(s, p, o)
}
