package delta

import (
	"reflect"
	"testing"

	"dualsim/internal/rdf"
	"dualsim/internal/storage"
)

func baseStore(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.FromTriples([]rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("c", "q", "a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func set(st *storage.Store) map[string]bool {
	out := make(map[string]bool)
	for _, t := range st.Triples() {
		out[t.S.Key()+"|"+t.P+"|"+t.O.Key()] = true
	}
	return out
}

func TestApplyPublishesEpochs(t *testing.T) {
	o, err := New(baseStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, e := o.Current(); e != 0 {
		t.Fatalf("fresh overlay at epoch %d", e)
	}

	st1, res, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("d", "p", "a")}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Added != 1 || res.Deleted != 0 || res.Compacted {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.OverlaySize != 1 {
		t.Fatalf("OverlaySize = %d, want 1", res.OverlaySize)
	}
	if !set(st1)["i:d|p|i:a"] {
		t.Fatal("added triple missing from the published snapshot")
	}

	st2, res, err := o.Apply(Delta{Dels: []rdf.Triple{rdf.T("a", "p", "b")}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 || res.Deleted != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if set(st2)["i:a|p|i:b"] {
		t.Fatal("deleted triple survived")
	}
	// The epoch-1 snapshot still serves its own state.
	if !set(st1)["i:a|p|i:b"] {
		t.Fatal("pinned snapshot lost a triple after a later delete")
	}
}

// TestApplyEmptyDeltaNoOp: an empty delta publishes nothing — same
// store pointer, same epoch, ledger untouched.
func TestApplyEmptyDeltaNoOp(t *testing.T) {
	o, err := New(baseStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("d", "p", "a")}}); err != nil {
		t.Fatal(err)
	}
	before, epochBefore := o.Current()

	st, res, err := o.Apply(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoOp || res.Epoch != epochBefore || res.Added != 0 || res.Deleted != 0 {
		t.Fatalf("empty apply result %+v (epoch before %d)", res, epochBefore)
	}
	if res.OverlaySize != 1 {
		t.Fatalf("empty apply reported OverlaySize %d, want 1 (unchanged)", res.OverlaySize)
	}
	if st != before {
		t.Fatal("empty apply published a new snapshot")
	}
	if _, e := o.Current(); e != epochBefore {
		t.Fatalf("empty apply advanced the epoch to %d", e)
	}
}

func TestLedgerCancellation(t *testing.T) {
	o, err := New(baseStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stage an add, then delete it: the ledger returns to empty.
	if _, _, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("x", "p", "y")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Apply(Delta{Dels: []rdf.Triple{rdf.T("x", "p", "y")}}); err != nil {
		t.Fatal(err)
	}
	if s := o.Size(); s != 0 {
		t.Fatalf("ledger size = %d after add+del cancel, want 0", s)
	}
	// Tombstone a base triple, then re-add it: also back to empty.
	if _, _, err := o.Apply(Delta{Dels: []rdf.Triple{rdf.T("a", "p", "b")}}); err != nil {
		t.Fatal(err)
	}
	if s := o.Size(); s != 1 {
		t.Fatalf("ledger size = %d after tombstone, want 1", s)
	}
	if _, _, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("a", "p", "b")}}); err != nil {
		t.Fatal(err)
	}
	if s := o.Size(); s != 0 {
		t.Fatalf("ledger size = %d after re-add, want 0", s)
	}
	cur, _ := o.Current()
	if !reflect.DeepEqual(set(cur), set(baseStore(t))) {
		t.Fatal("round-tripped overlay diverges from base")
	}
}

func TestAutoCompaction(t *testing.T) {
	o, err := New(baseStore(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, res, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("x1", "p", "y1")}}); err != nil || res.Compacted {
		t.Fatalf("below-threshold apply compacted: %+v err %v", res, err)
	}
	cur, res, err := o.Apply(Delta{Adds: []rdf.Triple{rdf.T("x2", "p", "y2")}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.OverlaySize != 0 || res.Epoch != 2 {
		t.Fatalf("threshold apply did not compact: %+v", res)
	}
	if o.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", o.Compactions())
	}
	want := map[string]bool{
		"i:a|p|i:b": true, "i:b|p|i:c": true, "i:c|q|i:a": true,
		"i:x1|p|i:y1": true, "i:x2|p|i:y2": true,
	}
	if !reflect.DeepEqual(set(cur), want) {
		t.Fatalf("compacted store wrong:\n got %v\nwant %v", set(cur), want)
	}
	// The compacted store carries a fresh dictionary: exactly the live
	// terms, no tombstone garbage.
	if cur.NumNodes() != 7 {
		t.Fatalf("compacted NumNodes = %d, want 7", cur.NumNodes())
	}
}

func TestExplicitCompactReclaimsDictionary(t *testing.T) {
	o, err := New(baseStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Apply(Delta{
		Adds: []rdf.Triple{rdf.T("tmp", "p", "tmp2")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Apply(Delta{
		Dels: []rdf.Triple{rdf.T("tmp", "p", "tmp2")},
	}); err != nil {
		t.Fatal(err)
	}
	// tmp and tmp2 stay interned until compaction.
	before, _ := o.Current()
	if before.NumNodes() != 5 {
		t.Fatalf("pre-compaction NumNodes = %d, want 5 (a b c tmp tmp2)", before.NumNodes())
	}
	cur, res, err := o.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.Epoch != 3 {
		t.Fatalf("unexpected compact result %+v", res)
	}
	if cur.NumNodes() != 3 {
		t.Fatalf("post-compaction NumNodes = %d, want 3 (a b c)", cur.NumNodes())
	}
}

func TestApplyAtomicOnError(t *testing.T) {
	o, err := New(baseStore(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := Delta{Adds: []rdf.Triple{
		rdf.T("ok", "p", "fine"),
		{S: rdf.NewLiteral("nope"), P: "p", O: rdf.NewIRI("x")},
	}}
	if _, _, err := o.Apply(bad); err == nil {
		t.Fatal("Apply accepted an invalid delta")
	}
	if e := o.Epoch(); e != 0 {
		t.Fatalf("failed Apply advanced the epoch to %d", e)
	}
	if s := o.Size(); s != 0 {
		t.Fatalf("failed Apply staged %d ledger entries", s)
	}
	cur, _ := o.Current()
	if cur.NumNodes() != 3 {
		t.Fatalf("failed Apply grew the dictionary to %d terms", cur.NumNodes())
	}
}
