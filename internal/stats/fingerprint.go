// Package stats is the workload statistics layer: pg_stat_statements
// for dualsim. Queries are keyed by a normalized statement fingerprint —
// a hash of the canonical AST print with variables renamed positionally
// and literal values masked — so executions of the same query *shape*
// aggregate together regardless of whitespace, literal constants or
// variable names. A bounded LRU of per-statement entries accumulates
// calls, errors, rows, cache hits, shed/timeout counts, fixed-bucket
// latency histograms and resource-accounting aggregates, cheaply enough
// to stay on for every request (the record path is lock-cheap and
// allocation-free once a statement is known; TestRecordAllocs pins
// that).
package stats

import (
	"hash/fnv"
	"strconv"
	"strings"

	"dualsim/internal/sparql"
)

// Fingerprint identifies one statement shape.
type Fingerprint struct {
	// ID is the 16-hex-digit rendering of Hash — the wire and map key.
	ID string
	// Hash is the FNV-64a hash of Text.
	Hash uint64
	// Text is the canonical statement print: variables renamed ?v0, ?v1,
	// … in first-occurrence order, literals masked to "?", IRIs kept
	// verbatim (predicates and constants are structure, not parameters).
	Text string
}

// Zero reports whether f carries no fingerprint.
func (f Fingerprint) Zero() bool { return f.ID == "" }

// Of fingerprints a parsed query. Two queries differing only in
// whitespace, literal values or variable names share a fingerprint;
// queries differing in structure (operators, predicates, IRIs, solution
// modifiers) do not.
func Of(q *sparql.Query) Fingerprint {
	c := canonicalizer{names: make(map[string]string)}
	canon := &sparql.Query{Expr: c.expr(q.Expr), Limit: q.Limit, Offset: q.Offset}
	return fromText(canon.String())
}

// OfSource fingerprints raw query text, parsing it first. Unparseable
// text falls back to a whitespace-insensitive hash of the source so
// that even malformed statements aggregate stably.
func OfSource(src string) Fingerprint {
	q, err := sparql.Parse(src)
	if err != nil {
		return fromText("!parse " + strings.Join(strings.Fields(src), " "))
	}
	return Of(q)
}

func fromText(text string) Fingerprint {
	h := fnv.New64a()
	h.Write([]byte(text))
	sum := h.Sum64()
	return Fingerprint{ID: formatID(sum), Hash: sum, Text: text}
}

func formatID(sum uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[sum&0xf]
		sum >>= 4
	}
	return string(b[:])
}

// canonicalizer rewrites an expression tree into its normal form:
// variables renamed positionally, literals masked.
type canonicalizer struct {
	names map[string]string
	next  int
}

func (c *canonicalizer) term(t sparql.Term) sparql.Term {
	if t.IsVar() {
		name, ok := c.names[t.Var]
		if !ok {
			name = "v" + strconv.Itoa(c.next)
			c.next++
			c.names[t.Var] = name
		}
		return sparql.V(name)
	}
	if t.Const != nil && t.Const.IsLiteral() {
		return sparql.CL("?")
	}
	return t
}

func (c *canonicalizer) expr(e sparql.Expr) sparql.Expr {
	switch x := e.(type) {
	case sparql.BGP:
		out := make(sparql.BGP, len(x))
		for i, tp := range x {
			out[i] = sparql.TriplePattern{S: c.term(tp.S), P: c.term(tp.P), O: c.term(tp.O)}
		}
		return out
	case sparql.And:
		return sparql.And{L: c.expr(x.L), R: c.expr(x.R)}
	case sparql.Optional:
		return sparql.Optional{L: c.expr(x.L), R: c.expr(x.R)}
	case sparql.Union:
		return sparql.Union{L: c.expr(x.L), R: c.expr(x.R)}
	case sparql.Filter:
		return sparql.Filter{Inner: c.expr(x.Inner), Cond: c.cond(x.Cond)}
	default:
		return e
	}
}

func (c *canonicalizer) cond(cond sparql.Condition) sparql.Condition {
	switch x := cond.(type) {
	case sparql.Comparison:
		return sparql.Comparison{Op: x.Op, L: c.term(x.L), R: c.term(x.R)}
	case sparql.CondAnd:
		return sparql.CondAnd{L: c.cond(x.L), R: c.cond(x.R)}
	case sparql.CondOr:
		return sparql.CondOr{L: c.cond(x.L), R: c.cond(x.R)}
	case sparql.CondNot:
		return sparql.CondNot{C: c.cond(x.C)}
	case sparql.Bound:
		t := c.term(sparql.V(x.Var))
		return sparql.Bound{Var: t.Var}
	default:
		return cond
	}
}
