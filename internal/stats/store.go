package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dualsim/internal/metrics"
)

// LatencyBounds is the per-statement latency bucket layout (seconds).
// It is fixed across every process of a cluster, which is what makes
// statement rows mergeable across shards: position-wise bucket sums are
// a valid histogram of the union workload.
var LatencyBounds = metrics.DefLatencyBuckets

// DefaultCapacity bounds the statement LRU when no capacity is given.
const DefaultCapacity = 256

// Observation is one query execution's contribution to its statement.
type Observation struct {
	Duration time.Duration
	Rows     int64
	CacheHit bool
	// Error marks any failed execution; Timeout the deadline-exceeded
	// subset (both are set for a timeout).
	Error   bool
	Timeout bool
	// EstErrRows is the planner's cumulative |estimated − actual| row
	// error over the operators of this execution.
	EstErrRows int64
	// MemPeakBytes and RowsBuffered mirror ExecStats.resources.
	MemPeakBytes int64
	RowsBuffered int64
}

// Statement is the aggregate view of one fingerprint — the row shape of
// GET /v1/debug/statements. JSON tags are wire-stable lowerCamel.
//
//dualsim:wire
type Statement struct {
	Fingerprint string `json:"fingerprint"`
	// Query is the canonical normalized statement text (variables
	// renamed, literals masked) — representative, not any one source.
	Query     string        `json:"query"`
	Calls     int64         `json:"calls"`
	Errors    int64         `json:"errors,omitempty"`
	Timeouts  int64         `json:"timeouts,omitempty"`
	Shed      int64         `json:"shed,omitempty"`
	Rows      int64         `json:"rows"`
	CacheHits int64         `json:"cacheHits"`
	TotalTime time.Duration `json:"totalTime"`
	MeanTime  time.Duration `json:"meanTime"`
	P50       time.Duration `json:"p50"`
	P95       time.Duration `json:"p95"`
	P99       time.Duration `json:"p99"`
	// MaxMemBytes is the largest per-query memory peak seen;
	// RowsBuffered and EstErrorRows accumulate across calls.
	MaxMemBytes  int64 `json:"maxMemBytes,omitempty"`
	RowsBuffered int64 `json:"rowsBuffered,omitempty"`
	EstErrorRows int64 `json:"estErrorRows,omitempty"`
	// LastSlowTraceID cross-links to /v1/debug/slow: the trace ID of
	// this statement's most recent slow-log entry.
	LastSlowTraceID string `json:"lastSlowTraceID,omitempty"`
	// LatencyBuckets is the cumulative per-bucket call count over
	// LatencyBounds plus the +Inf bucket — the mergeable histogram the
	// quantiles above are interpolated from.
	LatencyBuckets []int64 `json:"latencyBuckets,omitempty"`
}

// entry is the live aggregate for one fingerprint. All counters are
// atomics so the record path takes no lock beyond the store's read
// lock for the map lookup.
type entry struct {
	id, text string

	lastUsed atomic.Int64 // recency clock value; drives LRU eviction

	calls, errors, timeouts, shed atomic.Int64
	rows, cacheHits               atomic.Int64
	totalNs                       atomic.Int64
	estErrRows                    atomic.Int64
	maxMem                        atomic.Int64
	rowsBuffered                  atomic.Int64
	lastSlow                      atomic.Pointer[string]

	hist *metrics.Histogram
}

//dualsim:hotpath
func (e *entry) touch(clock *atomic.Int64) { e.lastUsed.Store(clock.Add(1)) }

// Store is the bounded per-statement aggregate map. The zero value is
// not usable; construct with NewStore. A nil *Store is a valid no-op
// sink (recording disabled), mirroring trace.SlowLog.
type Store struct {
	mu      sync.RWMutex
	cap     int
	entries map[string]*entry
	clock   atomic.Int64
	evicted atomic.Int64
}

// NewStore returns a store keeping at most capacity statements
// (DefaultCapacity when capacity <= 0); least-recently-recorded
// statements are evicted first.
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, entries: make(map[string]*entry, capacity)}
}

// Enabled reports whether the store records anything.
func (s *Store) Enabled() bool { return s != nil }

// lookup returns the live entry for fp, creating (and possibly
// evicting) under the write lock only on first sight of a fingerprint.
func (s *Store) lookup(fp Fingerprint) *entry {
	s.mu.RLock()
	e := s.entries[fp.ID]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e = s.entries[fp.ID]; e != nil {
		return e
	}
	if len(s.entries) >= s.cap {
		s.evictLocked()
	}
	e = &entry{id: fp.ID, text: fp.Text, hist: metrics.NewHistogram(LatencyBounds)}
	s.entries[fp.ID] = e
	return e
}

// evictLocked drops the least-recently-used entry. Capacity is small
// and inserts are rare (one per new statement shape), so a linear scan
// beats maintaining a list on the hot path.
func (s *Store) evictLocked() {
	var victim string
	oldest := int64(math.MaxInt64)
	for id, e := range s.entries {
		if u := e.lastUsed.Load(); u < oldest {
			oldest, victim = u, id
		}
	}
	if victim != "" {
		delete(s.entries, victim)
		s.evicted.Add(1)
	}
}

// Record folds one execution into its statement aggregate. It is safe
// for concurrent use and allocation-free once the statement exists.
//
//dualsim:hotpath
func (s *Store) Record(fp Fingerprint, obs Observation) {
	if s == nil || fp.Zero() {
		return
	}
	e := s.lookup(fp)
	e.touch(&s.clock)
	e.calls.Add(1)
	e.totalNs.Add(int64(obs.Duration))
	e.hist.Observe(obs.Duration.Seconds())
	if obs.Rows != 0 {
		e.rows.Add(obs.Rows)
	}
	if obs.CacheHit {
		e.cacheHits.Add(1)
	}
	if obs.Error {
		e.errors.Add(1)
	}
	if obs.Timeout {
		e.timeouts.Add(1)
	}
	if obs.EstErrRows != 0 {
		e.estErrRows.Add(obs.EstErrRows)
	}
	if obs.RowsBuffered != 0 {
		e.rowsBuffered.Add(obs.RowsBuffered)
	}
	if m := obs.MemPeakBytes; m > 0 {
		for {
			cur := e.maxMem.Load()
			if m <= cur || e.maxMem.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// RecordShed counts an admission-shed request against its statement
// (shed requests never execute, so they are not calls).
//
//dualsim:hotpath
func (s *Store) RecordShed(fp Fingerprint) {
	if s == nil || fp.Zero() {
		return
	}
	e := s.lookup(fp)
	e.touch(&s.clock)
	e.shed.Add(1)
}

// SetLastSlow cross-links the statement to its most recent slow-log
// entry. A no-op for unknown fingerprints.
func (s *Store) SetLastSlow(fingerprintID, traceID string) {
	if s == nil || fingerprintID == "" || traceID == "" {
		return
	}
	s.mu.RLock()
	e := s.entries[fingerprintID]
	s.mu.RUnlock()
	if e != nil {
		e.lastSlow.Store(&traceID)
	}
}

// Len reports how many statements are tracked, Evicted how many the
// LRU bound has dropped.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

func (s *Store) Evicted() int64 {
	if s == nil {
		return 0
	}
	return s.evicted.Load()
}

// Reset drops every statement (the ?reset=1 surface).
func (s *Store) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.entries = make(map[string]*entry, s.cap)
	s.mu.Unlock()
}

// Statements snapshots every aggregate, sorted by total time
// descending (the pg_stat_statements default ordering).
func (s *Store) Statements() []Statement {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	live := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		live = append(live, e)
	}
	s.mu.RUnlock()

	out := make([]Statement, 0, len(live))
	for _, e := range live {
		st := Statement{
			Fingerprint:  e.id,
			Query:        e.text,
			Calls:        e.calls.Load(),
			Errors:       e.errors.Load(),
			Timeouts:     e.timeouts.Load(),
			Shed:         e.shed.Load(),
			Rows:         e.rows.Load(),
			CacheHits:    e.cacheHits.Load(),
			TotalTime:    time.Duration(e.totalNs.Load()),
			MaxMemBytes:  e.maxMem.Load(),
			RowsBuffered: e.rowsBuffered.Load(),
			EstErrorRows: e.estErrRows.Load(),
		}
		if p := e.lastSlow.Load(); p != nil {
			st.LastSlowTraceID = *p
		}
		bounds, cum := e.hist.Buckets()
		st.LatencyBuckets = cum
		st.P50 = secondsToDuration(metrics.BucketQuantile(bounds, cum, 0.50))
		st.P95 = secondsToDuration(metrics.BucketQuantile(bounds, cum, 0.95))
		st.P99 = secondsToDuration(metrics.BucketQuantile(bounds, cum, 0.99))
		if st.Calls > 0 {
			st.MeanTime = st.TotalTime / time.Duration(st.Calls)
		}
		out = append(out, st)
	}
	sortByTotalTime(out)
	return out
}

// Merge folds statement rows — typically one slice per shard — into a
// cluster-wide view keyed by fingerprint: counters and histogram
// buckets sum position-wise, memory peaks take the max, and the
// quantiles are re-interpolated from the merged buckets. The result is
// sorted by total time descending.
func Merge(groups ...[]Statement) []Statement {
	merged := make(map[string]*Statement)
	var order []string
	for _, rows := range groups {
		for i := range rows {
			r := rows[i]
			m, ok := merged[r.Fingerprint]
			if !ok {
				cp := r
				cp.LatencyBuckets = append([]int64(nil), r.LatencyBuckets...)
				merged[r.Fingerprint] = &cp
				order = append(order, r.Fingerprint)
				continue
			}
			m.Calls += r.Calls
			m.Errors += r.Errors
			m.Timeouts += r.Timeouts
			m.Shed += r.Shed
			m.Rows += r.Rows
			m.CacheHits += r.CacheHits
			m.TotalTime += r.TotalTime
			m.RowsBuffered += r.RowsBuffered
			m.EstErrorRows += r.EstErrorRows
			if r.MaxMemBytes > m.MaxMemBytes {
				m.MaxMemBytes = r.MaxMemBytes
			}
			if m.LastSlowTraceID == "" {
				m.LastSlowTraceID = r.LastSlowTraceID
			}
			if len(m.LatencyBuckets) == len(r.LatencyBuckets) {
				for i := range m.LatencyBuckets {
					m.LatencyBuckets[i] += r.LatencyBuckets[i]
				}
			}
		}
	}
	bounds := make([]float64, len(LatencyBounds)+1)
	copy(bounds, LatencyBounds)
	bounds[len(LatencyBounds)] = math.Inf(1)
	out := make([]Statement, 0, len(merged))
	for _, id := range order {
		m := merged[id]
		if len(m.LatencyBuckets) == len(bounds) {
			m.P50 = secondsToDuration(metrics.BucketQuantile(bounds, m.LatencyBuckets, 0.50))
			m.P95 = secondsToDuration(metrics.BucketQuantile(bounds, m.LatencyBuckets, 0.95))
			m.P99 = secondsToDuration(metrics.BucketQuantile(bounds, m.LatencyBuckets, 0.99))
		}
		if m.Calls > 0 {
			m.MeanTime = m.TotalTime / time.Duration(m.Calls)
		}
		out = append(out, *m)
	}
	sortByTotalTime(out)
	return out
}

func sortByTotalTime(rows []Statement) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].TotalTime != rows[j].TotalTime {
			return rows[i].TotalTime > rows[j].TotalTime
		}
		return rows[i].Fingerprint < rows[j].Fingerprint
	})
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
