package stats

import (
	"testing"
	"time"
)

func fp(t *testing.T, src string) Fingerprint {
	t.Helper()
	f := OfSource(src)
	if f.Zero() {
		t.Fatalf("no fingerprint for %q", src)
	}
	return f
}

func TestStoreRecordAggregates(t *testing.T) {
	s := NewStore(8)
	f := fp(t, `SELECT * WHERE { ?x <knows> ?y . }`)

	s.Record(f, Observation{Duration: 2 * time.Millisecond, Rows: 3, CacheHit: false, EstErrRows: 2, MemPeakBytes: 100, RowsBuffered: 3})
	s.Record(f, Observation{Duration: 4 * time.Millisecond, Rows: 3, CacheHit: true, MemPeakBytes: 50, RowsBuffered: 3})
	s.Record(f, Observation{Duration: 100 * time.Millisecond, Error: true, Timeout: true})
	s.RecordShed(f)

	rows := s.Statements()
	if len(rows) != 1 {
		t.Fatalf("statements = %d, want 1", len(rows))
	}
	st := rows[0]
	if st.Fingerprint != f.ID || st.Query != f.Text {
		t.Fatalf("identity = %q/%q, want %q/%q", st.Fingerprint, st.Query, f.ID, f.Text)
	}
	if st.Calls != 3 || st.Rows != 6 || st.CacheHits != 1 || st.Errors != 1 || st.Timeouts != 1 || st.Shed != 1 {
		t.Fatalf("counters = %+v", st)
	}
	if st.TotalTime != 106*time.Millisecond {
		t.Fatalf("totalTime = %v", st.TotalTime)
	}
	if st.MeanTime != st.TotalTime/3 {
		t.Fatalf("meanTime = %v", st.MeanTime)
	}
	if st.MaxMemBytes != 100 || st.RowsBuffered != 6 || st.EstErrorRows != 2 {
		t.Fatalf("resources = mem %d buffered %d estErr %d", st.MaxMemBytes, st.RowsBuffered, st.EstErrorRows)
	}
	// p50 falls with the two fast calls, p99 with the slow one.
	if st.P50 <= 0 || st.P50 > 10*time.Millisecond {
		t.Fatalf("p50 = %v", st.P50)
	}
	if st.P99 <= 25*time.Millisecond {
		t.Fatalf("p99 = %v", st.P99)
	}
	if len(st.LatencyBuckets) != len(LatencyBounds)+1 {
		t.Fatalf("latencyBuckets = %d, want %d", len(st.LatencyBuckets), len(LatencyBounds)+1)
	}
	if st.LatencyBuckets[len(st.LatencyBuckets)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want 3", st.LatencyBuckets[len(st.LatencyBuckets)-1])
	}
}

func TestStoreSortedByTotalTime(t *testing.T) {
	s := NewStore(8)
	cheap := fp(t, `SELECT * WHERE { ?x <a> ?y . }`)
	costly := fp(t, `SELECT * WHERE { ?x <b> ?y . }`)
	s.Record(cheap, Observation{Duration: time.Millisecond})
	s.Record(costly, Observation{Duration: time.Second})
	rows := s.Statements()
	if len(rows) != 2 || rows[0].Fingerprint != costly.ID {
		t.Fatalf("order = %+v, want %s first", rows, costly.ID)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	a := fp(t, `SELECT * WHERE { ?x <a> ?y . }`)
	b := fp(t, `SELECT * WHERE { ?x <b> ?y . }`)
	c := fp(t, `SELECT * WHERE { ?x <c> ?y . }`)
	s.Record(a, Observation{})
	s.Record(b, Observation{})
	s.Record(a, Observation{}) // refresh a: b is now the LRU victim
	s.Record(c, Observation{})
	if s.Len() != 2 || s.Evicted() != 1 {
		t.Fatalf("len = %d evicted = %d, want 2/1", s.Len(), s.Evicted())
	}
	ids := map[string]bool{}
	for _, st := range s.Statements() {
		ids[st.Fingerprint] = true
	}
	if !ids[a.ID] || !ids[c.ID] || ids[b.ID] {
		t.Fatalf("survivors = %v, want a and c", ids)
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore(8)
	s.Record(fp(t, `SELECT * WHERE { ?x <a> ?y . }`), Observation{})
	s.Reset()
	if s.Len() != 0 || len(s.Statements()) != 0 {
		t.Fatalf("reset left %d statements", s.Len())
	}
}

func TestStoreSlowLogCrossLink(t *testing.T) {
	s := NewStore(8)
	f := fp(t, `SELECT * WHERE { ?x <a> ?y . }`)
	s.SetLastSlow(f.ID, "ffff") // unknown statement: dropped
	s.Record(f, Observation{})
	s.SetLastSlow(f.ID, "abcd1234")
	if got := s.Statements()[0].LastSlowTraceID; got != "abcd1234" {
		t.Fatalf("lastSlowTraceID = %q", got)
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	if s.Enabled() {
		t.Fatal("nil store claims enabled")
	}
	s.Record(Fingerprint{ID: "x"}, Observation{})
	s.RecordShed(Fingerprint{ID: "x"})
	s.SetLastSlow("x", "y")
	s.Reset()
	if s.Len() != 0 || s.Statements() != nil || s.Evicted() != 0 {
		t.Fatal("nil store not a no-op")
	}
}

func TestMergeAcrossShards(t *testing.T) {
	s0, s1 := NewStore(8), NewStore(8)
	f := fp(t, `SELECT * WHERE { ?x <knows> ?y . }`)
	other := fp(t, `SELECT * WHERE { ?x <likes> ?y . }`)
	s0.Record(f, Observation{Duration: 2 * time.Millisecond, Rows: 1, MemPeakBytes: 10})
	s0.Record(f, Observation{Duration: 2 * time.Millisecond, Rows: 1})
	s1.Record(f, Observation{Duration: 8 * time.Millisecond, Rows: 4, MemPeakBytes: 99})
	s1.Record(other, Observation{Duration: time.Millisecond})

	merged := Merge(s0.Statements(), s1.Statements())
	if len(merged) != 2 {
		t.Fatalf("merged = %d statements, want 2", len(merged))
	}
	var m *Statement
	for i := range merged {
		if merged[i].Fingerprint == f.ID {
			m = &merged[i]
		}
	}
	if m == nil {
		t.Fatalf("fingerprint %s lost in merge", f.ID)
	}
	// The cluster-wide call count is the sum over shards — the invariant
	// the routed CI run asserts.
	if m.Calls != 3 || m.Rows != 6 || m.TotalTime != 12*time.Millisecond {
		t.Fatalf("merged = %+v", m)
	}
	if m.MaxMemBytes != 99 {
		t.Fatalf("merged maxMem = %d, want 99", m.MaxMemBytes)
	}
	if m.MeanTime != 4*time.Millisecond {
		t.Fatalf("merged mean = %v", m.MeanTime)
	}
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Fatalf("merged quantiles p50 %v p99 %v", m.P50, m.P99)
	}
	inf := m.LatencyBuckets[len(m.LatencyBuckets)-1]
	if inf != 3 {
		t.Fatalf("merged +Inf bucket = %d, want 3", inf)
	}
}

// TestRecordAllocs pins the always-on accounting contract: once a
// statement is known, folding an execution into it allocates nothing —
// the record path rides on every cache-hit query.
func TestRecordAllocs(t *testing.T) {
	s := NewStore(8)
	f := fp(t, `SELECT * WHERE { ?x <knows> ?y . }`)
	obs := Observation{Duration: time.Millisecond, Rows: 2, CacheHit: true, MemPeakBytes: 64, RowsBuffered: 2}
	s.Record(f, obs)
	if n := testing.AllocsPerRun(200, func() { s.Record(f, obs) }); n != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", n)
	}
}

func TestStoreConcurrentRecord(t *testing.T) {
	s := NewStore(4)
	f := fp(t, `SELECT * WHERE { ?x <knows> ?y . }`)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				s.Record(f, Observation{Duration: time.Microsecond, Rows: 1})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := s.Statements()[0].Calls; got != 4000 {
		t.Fatalf("calls = %d, want 4000", got)
	}
}
