package stats

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dualsim/internal/sparql"
)

func TestFingerprintNormalizesParameters(t *testing.T) {
	base := OfSource(`SELECT * WHERE { ?x <knows> "a" . }`)
	same := []string{
		`SELECT * WHERE { ?x <knows> "b" . }`,          // literal value
		`SELECT * WHERE { ?who <knows> "zzz" . }`,      // variable name
		"SELECT *\n\tWHERE {\n  ?x <knows> \"a\" .\n}", // whitespace
	}
	for _, src := range same {
		if got := OfSource(src); got.ID != base.ID {
			t.Errorf("%q fingerprints to %s, want %s (%q vs %q)", src, got.ID, base.ID, got.Text, base.Text)
		}
	}
	different := []string{
		`SELECT * WHERE { ?x <likes> "a" . }`,         // predicate
		`SELECT * WHERE { ?x <knows> <a> . }`,         // IRI constant, not literal
		`SELECT * WHERE { ?x <knows> ?y . }`,          // variable, not literal
		`SELECT * WHERE { ?x <knows> "a" . } LIMIT 5`, // modifier
	}
	for _, src := range different {
		if got := OfSource(src); got.ID == base.ID {
			t.Errorf("%q collides with base fingerprint %s", src, base.ID)
		}
	}
}

func TestFingerprintOfMatchesOfSource(t *testing.T) {
	src := `SELECT * WHERE { ?m <budget> ?b . FILTER(?b < "100") } LIMIT 3`
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if Of(q).ID != OfSource(src).ID {
		t.Fatal("Of(parsed) and OfSource(text) disagree")
	}
	f := Of(q)
	if len(f.ID) != 16 || f.Hash == 0 || f.Text == "" {
		t.Fatalf("fingerprint shape = %+v", f)
	}
	// The canonical text is itself parseable and a fixpoint.
	if again := OfSource(f.Text); again.ID != f.ID {
		t.Fatalf("canonical text %q re-fingerprints to %s, want %s", f.Text, again.ID, f.ID)
	}
}

func TestFingerprintUnparseableFallback(t *testing.T) {
	a := OfSource(`SELECT * WHERE { broken`)
	b := OfSource("SELECT  *  WHERE  {\tbroken")
	if a.Zero() || a.ID != b.ID {
		t.Fatalf("unparseable fallback unstable: %s vs %s", a.ID, b.ID)
	}
	ok := OfSource(`SELECT * WHERE { ?s <p> ?o . }`)
	if a.ID == ok.ID {
		t.Fatal("fallback collides with a parsed fingerprint")
	}
}

// corpus is a set of pairwise structurally distinct query templates.
// `?A ?B ?C` are variable slots and %L literal slots: filling them with
// arbitrary names/values — plus arbitrary token whitespace — must not
// change the fingerprint, while no two templates may ever share one.
var corpus = []string{
	`SELECT * WHERE { ?A <knows> ?B . }`,
	`SELECT * WHERE { ?A <likes> ?B . }`,
	`SELECT * WHERE { ?A <knows> ?B . ?B <knows> ?C . }`,
	`SELECT * WHERE { ?A <knows> "%L" . }`,
	`SELECT * WHERE { ?A <knows> <alice> . }`,
	`SELECT * WHERE { { ?A <knows> ?B . } UNION { ?A <likes> ?B . } }`,
	`SELECT * WHERE { { ?A <knows> ?B . } OPTIONAL { ?A <likes> ?C . } }`,
	`SELECT * WHERE { ?A <budget> ?B . FILTER(?B < "%L") }`,
	`SELECT * WHERE { ?A <budget> ?B . FILTER(?B > "%L") }`,
	`SELECT * WHERE { ?A <budget> ?B . FILTER(?B < "%L" && bound(?C)) ?A <has> ?C . }`,
	`SELECT * WHERE { ?A <knows> ?B . } LIMIT 10`,
	`SELECT * WHERE { ?A <knows> ?B . } LIMIT 20`,
	`SELECT * WHERE { ?A <knows> ?B . } LIMIT 10 OFFSET 5`,
}

// render fills a template's slots with randomized names, literal values
// and inter-token whitespace — cosmetically different, structurally
// identical.
func render(rng *rand.Rand, tmpl string) string {
	for slot, name := range map[string]string{
		"?A": "?" + fmt.Sprintf("a%d", rng.Intn(1000)),
		"?B": "?" + fmt.Sprintf("b%d", rng.Intn(1000)),
		"?C": "?" + fmt.Sprintf("c%d", rng.Intn(1000)),
	} {
		tmpl = strings.ReplaceAll(tmpl, slot, name)
	}
	for strings.Contains(tmpl, "%L") {
		tmpl = strings.Replace(tmpl, "%L", fmt.Sprintf("lit%d", rng.Intn(100000)), 1)
	}
	// Re-space: each single space becomes 1–3 random whitespace runes.
	ws := []string{" ", "  ", "\t", "\n", " \t "}
	var b strings.Builder
	for _, tok := range strings.Split(tmpl, " ") {
		if tok == "" {
			continue
		}
		b.WriteString(tok)
		b.WriteString(ws[rng.Intn(len(ws))])
	}
	return b.String()
}

// TestFingerprintDifferential is the normalization property test:
// cosmetic variants of one template always agree, and distinct
// templates never collide across the whole randomized corpus.
func TestFingerprintDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	byTemplate := make([]string, len(corpus))
	seen := make(map[string]int) // fingerprint -> template index
	for i, tmpl := range corpus {
		for v := 0; v < 25; v++ {
			src := render(rng, tmpl)
			q, err := sparql.Parse(src)
			if err != nil {
				t.Fatalf("template %d variant %q does not parse: %v", i, src, err)
			}
			f := Of(q)
			if v == 0 {
				byTemplate[i] = f.ID
				if prev, dup := seen[f.ID]; dup {
					t.Fatalf("templates %d and %d collide on %s:\n  %s\n  %s", prev, i, f.ID, corpus[prev], tmpl)
				}
				seen[f.ID] = i
				continue
			}
			if f.ID != byTemplate[i] {
				t.Fatalf("template %d variant %q fingerprints to %s, want %s (canonical %q)",
					i, src, f.ID, byTemplate[i], f.Text)
			}
		}
	}
	if len(seen) != len(corpus) {
		t.Fatalf("expected %d distinct fingerprints, got %d", len(corpus), len(seen))
	}
}
