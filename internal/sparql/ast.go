// Package sparql implements the query language fragment S of the paper's
// Sect. 4: union-free SPARQL queries built from basic graph patterns with
// AND and OPTIONAL operators, plus UNION (Sect. 4.2), with the formal set
// semantics of Pérez, Arenas and Gutierrez. It provides the abstract
// syntax, a parser for the concrete `SELECT * WHERE { … }` syntax, the
// variable analyses vars/mand, the well-designedness test, and the
// union-normal-form rewriting (Proposition 3).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"dualsim/internal/rdf"
)

// Term is a subject, predicate or object position of a triple pattern:
// either a variable or a constant database term.
type Term struct {
	Var   string    // non-empty for a variable
	Const *rdf.Term // non-nil for a constant
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant IRI term.
func C(iri string) Term {
	t := rdf.NewIRI(iri)
	return Term{Const: &t}
}

// CL returns a constant literal term.
func CL(lit string) Term {
	t := rdf.NewLiteral(lit)
	return Term{Const: &t}
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	if t.Const == nil {
		return "<?>"
	}
	return t.Const.String()
}

// TriplePattern is one triple pattern (s, p, o).
type TriplePattern struct {
	S, P, O Term
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Expr is a graph pattern expression: BGP, And, Optional, Union or
// Filter.
type Expr interface {
	isExpr()
	String() string
}

// BGP is a basic graph pattern — a set of triple patterns.
type BGP []TriplePattern

// And is the conjunction Q1 AND Q2 (inner join).
type And struct{ L, R Expr }

// Optional is Q1 OPTIONAL Q2 (left outer join).
type Optional struct{ L, R Expr }

// Union is Q1 UNION Q2.
type Union struct{ L, R Expr }

// Filter is Q FILTER(C): the mappings of Q whose condition evaluates to
// true (errors — e.g. comparisons on unbound variables — drop the row).
type Filter struct {
	Inner Expr
	Cond  Condition
}

func (BGP) isExpr()      {}
func (And) isExpr()      {}
func (Optional) isExpr() {}
func (Union) isExpr()    {}
func (Filter) isExpr()   {}

// String renders every expression in re-parseable concrete syntax, so
// Parse(q.String()) reproduces the query.

func (b BGP) String() string {
	if len(b) == 0 {
		return "{ }"
	}
	var sb strings.Builder
	sb.WriteString("{ ")
	for i, tp := range b {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(tp.String())
	}
	sb.WriteString(" }")
	return sb.String()
}

func (a And) String() string {
	return "{ " + a.L.String() + " " + a.R.String() + " }"
}

func (o Optional) String() string {
	return "{ " + o.L.String() + " OPTIONAL " + o.R.String() + " }"
}

func (u Union) String() string {
	return "{ " + u.L.String() + " UNION " + u.R.String() + " }"
}

func (f Filter) String() string {
	return "{ " + f.Inner.String() + " FILTER(" + f.Cond.String() + ") }"
}

// Query is a SELECT * query over one graph pattern, optionally truncated
// by a LIMIT/OFFSET solution-set modifier. Limit 0 means "no limit" (the
// parser rejects a literal LIMIT 0), Offset 0 means "no offset".
type Query struct {
	Expr   Expr
	Limit  int
	Offset int
}

func (q *Query) String() string {
	s := "SELECT * WHERE " + q.Expr.String()
	if q.Limit > 0 {
		s += fmt.Sprintf(" LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		s += fmt.Sprintf(" OFFSET %d", q.Offset)
	}
	return s
}

// Vars returns vars(e): every variable occurring in e, sorted.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// VarSet returns vars(e) as a set.
func VarSet(e Expr) map[string]bool {
	set := make(map[string]bool)
	collectVars(e, set)
	return set
}

func collectVars(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case BGP:
		for _, tp := range x {
			for _, t := range []Term{tp.S, tp.P, tp.O} {
				if t.IsVar() {
					set[t.Var] = true
				}
			}
		}
	case And:
		collectVars(x.L, set)
		collectVars(x.R, set)
	case Optional:
		collectVars(x.L, set)
		collectVars(x.R, set)
	case Union:
		collectVars(x.L, set)
		collectVars(x.R, set)
	case Filter:
		collectVars(x.Inner, set)
		CondVars(x.Cond, set)
	}
}

// Mand returns mand(e), the mandatory variables of Sect. 4.3:
//
//	mand(G)                = vars(G)
//	mand(Q1 AND Q2)        = mand(Q1) ∪ mand(Q2)
//	mand(Q1 OPTIONAL Q2)   = mand(Q1)
//	mand(Q1 UNION Q2)      = mand(Q1) ∩ mand(Q2)   (bound in every branch)
func Mand(e Expr) map[string]bool {
	switch x := e.(type) {
	case BGP:
		return VarSet(x)
	case And:
		l, r := Mand(x.L), Mand(x.R)
		for v := range r {
			l[v] = true
		}
		return l
	case Optional:
		return Mand(x.L)
	case Union:
		l, r := Mand(x.L), Mand(x.R)
		out := make(map[string]bool)
		for v := range l {
			if r[v] {
				out[v] = true
			}
		}
		return out
	case Filter:
		// A filter only removes rows; the surviving rows bind at least
		// the mandatory variables of the inner pattern.
		return Mand(x.Inner)
	}
	return nil
}

// IsWellDesigned reports whether the query is well-designed (Pérez et
// al. [27], cf. Sect. 4.5): for every sub-pattern Q1 OPTIONAL Q2, every
// variable of Q2 that also occurs outside the sub-pattern occurs in Q1.
// The check applies to the UNION-free branches individually.
func IsWellDesigned(e Expr) bool {
	total := make(map[string]int)
	countVarOccurrences(e, total)
	return wellDesignedRec(e, total)
}

func wellDesignedRec(e Expr, total map[string]int) bool {
	switch x := e.(type) {
	case BGP:
		return true
	case And:
		return wellDesignedRec(x.L, total) && wellDesignedRec(x.R, total)
	case Union:
		return wellDesignedRec(x.L, total) && wellDesignedRec(x.R, total)
	case Filter:
		return wellDesignedRec(x.Inner, total)
	case Optional:
		// Occurrences inside this whole optional pattern.
		inside := make(map[string]int)
		countVarOccurrences(x, inside)
		lvars := VarSet(x.L)
		for v := range VarSet(x.R) {
			if total[v] > inside[v] && !lvars[v] {
				return false
			}
		}
		return wellDesignedRec(x.L, total) && wellDesignedRec(x.R, total)
	}
	return true
}

func countVarOccurrences(e Expr, counts map[string]int) {
	switch x := e.(type) {
	case BGP:
		for _, tp := range x {
			for _, t := range []Term{tp.S, tp.P, tp.O} {
				if t.IsVar() {
					counts[t.Var]++
				}
			}
		}
	case And:
		countVarOccurrences(x.L, counts)
		countVarOccurrences(x.R, counts)
	case Optional:
		countVarOccurrences(x.L, counts)
		countVarOccurrences(x.R, counts)
	case Union:
		countVarOccurrences(x.L, counts)
		countVarOccurrences(x.R, counts)
	case Filter:
		countVarOccurrences(x.Inner, counts)
		// Condition variables count as occurrences: a filter mentioning an
		// optional variable outside its OPTIONAL breaks well-designedness.
		set := make(map[string]bool)
		CondVars(x.Cond, set)
		for v := range set {
			counts[v]++
		}
	}
}

// HasUnion reports whether e contains a UNION operator.
func HasUnion(e Expr) bool {
	switch x := e.(type) {
	case BGP:
		return false
	case And:
		return HasUnion(x.L) || HasUnion(x.R)
	case Optional:
		return HasUnion(x.L) || HasUnion(x.R)
	case Union:
		return true
	case Filter:
		return HasUnion(x.Inner)
	}
	return false
}

// UnionFreeBranches rewrites e into a list of UNION-free expressions
// Q1, …, Qk with ⟦e⟧ = ⟦Q1 UNION … UNION Qk⟧ (Proposition 3), using the
// distributivity laws of Pérez et al.:
//
//	(P1 UNION P2) AND P3  ≡ (P1 AND P3) UNION (P2 AND P3)
//	P1 AND (P2 UNION P3)  ≡ (P1 AND P2) UNION (P1 AND P3)
//	(P1 UNION P2) OPT P3  ≡ (P1 OPT P3) UNION (P2 OPT P3)
//
// A UNION in the right argument of OPTIONAL has no exact distributivity
// law; it is rewritten to P1 OPT (P2 UNION P3) → (P1 OPT P2) UNION
// (P1 OPT P3), which OVER-approximates the result set (it may add matches
// of P1 alone). That is sound for dual-simulation pruning — no original
// match is lost — and the exact evaluation engines never use this
// rewriting (they evaluate UNION natively).
func UnionFreeBranches(e Expr) []Expr {
	switch x := e.(type) {
	case BGP:
		return []Expr{x}
	case Union:
		return append(UnionFreeBranches(x.L), UnionFreeBranches(x.R)...)
	case And:
		var out []Expr
		for _, l := range UnionFreeBranches(x.L) {
			for _, r := range UnionFreeBranches(x.R) {
				out = append(out, And{L: l, R: r})
			}
		}
		return out
	case Optional:
		var out []Expr
		for _, l := range UnionFreeBranches(x.L) {
			for _, r := range UnionFreeBranches(x.R) {
				out = append(out, Optional{L: l, R: r})
			}
		}
		return out
	case Filter:
		// FILTER distributes exactly over UNION:
		// (P1 UNION P2) FILTER C ≡ (P1 FILTER C) UNION (P2 FILTER C).
		var out []Expr
		for _, b := range UnionFreeBranches(x.Inner) {
			out = append(out, Filter{Inner: b, Cond: x.Cond})
		}
		return out
	}
	return nil
}

// Triples collects every triple pattern of e (over all operators).
func Triples(e Expr) []TriplePattern {
	var out []TriplePattern
	var rec func(Expr)
	rec = func(e Expr) {
		switch x := e.(type) {
		case BGP:
			out = append(out, x...)
		case And:
			rec(x.L)
			rec(x.R)
		case Optional:
			rec(x.L)
			rec(x.R)
		case Union:
			rec(x.L)
			rec(x.R)
		case Filter:
			rec(x.Inner)
		}
	}
	rec(e)
	return out
}
