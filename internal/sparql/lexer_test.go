package sparql

import (
	"strings"
	"testing"
)

func TestDollarVariableSyntax(t *testing.T) {
	q := MustParse(`SELECT * WHERE { $x p $y }`)
	bgp := q.Expr.(BGP)
	if bgp[0].S.Var != "x" || bgp[0].O.Var != "y" {
		t.Fatalf("dollar vars = %v", bgp[0])
	}
}

func TestSingleQuotedLiterals(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s p 'hello world' }`)
	bgp := q.Expr.(BGP)
	if !bgp[0].O.Const.IsLiteral() || bgp[0].O.Const.Value != "hello world" {
		t.Fatalf("literal = %v", bgp[0].O)
	}
}

func TestLiteralEscapes(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s p "a\nb\tc\\d\"e" }`)
	want := "a\nb\tc\\d\"e"
	if got := q.Expr.(BGP)[0].O.Const.Value; got != want {
		t.Fatalf("literal = %q, want %q", got, want)
	}
	if _, err := Parse(`SELECT * WHERE { ?s p "bad\q" }`); err == nil {
		t.Fatal("unknown escape accepted")
	}
}

func TestPrefixedNameTokens(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s rdf:type ub:Publication }`)
	bgp := q.Expr.(BGP)
	if bgp[0].P.Const.Value != "rdf:type" || bgp[0].O.Const.Value != "ub:Publication" {
		t.Fatalf("prefixed names = %v", bgp[0])
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	q := MustParse(`select * where { ?a p ?b optional { ?a q ?c } }`)
	if _, ok := q.Expr.(Optional); !ok {
		t.Fatalf("got %T", q.Expr)
	}
	q2 := MustParse(`SELECT * WHERE { { ?a p ?b } union { ?a q ?b } }`)
	if _, ok := q2.Expr.(Union); !ok {
		t.Fatalf("got %T", q2.Expr)
	}
}

func TestNestedGroupsDeep(t *testing.T) {
	q := MustParse(`SELECT * WHERE { { { { ?a p ?b } } } }`)
	if bgp, ok := q.Expr.(BGP); !ok || len(bgp) != 1 {
		t.Fatalf("deep nesting = %T %v", q.Expr, q.Expr)
	}
}

func TestUnionAfterOptionalGroup(t *testing.T) {
	// OPTIONAL over a union of groups.
	q := MustParse(`SELECT * WHERE { ?a p ?b OPTIONAL { { ?b q ?c } UNION { ?b r ?c } } }`)
	opt, ok := q.Expr.(Optional)
	if !ok {
		t.Fatalf("got %T", q.Expr)
	}
	if _, ok := opt.R.(Union); !ok {
		t.Fatalf("optional right = %T", opt.R)
	}
}

func TestVarsOnNestedStructure(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
	  { ?a p ?b } UNION { ?c q ?d OPTIONAL { ?e r ?f } } }`)
	if got := len(Vars(q.Expr)); got != 6 {
		t.Fatalf("vars = %d", got)
	}
	m := Mand(q.Expr)
	if len(m) != 0 {
		t.Fatalf("mand across union branches = %v", m)
	}
}

func TestErrorMessagesCarryContext(t *testing.T) {
	_, err := Parse(`SELECT * WHERE { ?s p "unterminated }`)
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
	_, err = Parse(`FOO * WHERE { ?s p ?o }`)
	if err == nil || !strings.Contains(err.Error(), "SELECT") {
		t.Fatalf("err = %v", err)
	}
}
