package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the concrete syntax
//
//	SELECT * WHERE { pattern } [LIMIT n] [OFFSET n]
//
// where pattern is a sequence of triple patterns separated by optional
// dots, sub-groups `{ … }`, `OPTIONAL { … }` clauses, `{…} UNION {…}`
// alternations and `FILTER( condition )` constraints. Terms are variables
// (?name), IRIs (<iri> or bare words) and literals ("text", object
// position only). Conditions combine comparisons (= != < <= > >=) and
// bound(?v) with && / || / ! and parentheses. Comment lines start with
// '#'.
//
// Juxtaposition inside a group denotes conjunction: triple patterns
// accumulate into one BGP, sub-groups and OPTIONAL clauses combine with
// the accumulated pattern via AND and OPTIONAL, and FILTERs constrain the
// whole group — exactly the standard SPARQL-algebra group translation.
//
// Errors carry the position as line:column plus the byte offset.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expect(tokStar); err != nil {
		return nil, err
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	expr, err := p.group()
	if err != nil {
		return nil, err
	}
	q := &Query{Expr: expr}
	seenLimit, seenOffset := false, false
	for !p.eof() {
		switch {
		case p.isWord("LIMIT"):
			if seenLimit {
				return nil, p.errf(p.peek().pos, "duplicate LIMIT")
			}
			p.next()
			n, err := p.intWord()
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, p.errf(p.peek().pos, "LIMIT must be positive, got %d", n)
			}
			q.Limit = n
			seenLimit = true
		case p.isWord("OFFSET"):
			if seenOffset {
				return nil, p.errf(p.peek().pos, "duplicate OFFSET")
			}
			p.next()
			n, err := p.intWord()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, p.errf(p.peek().pos, "OFFSET must be non-negative, got %d", n)
			}
			q.Offset = n
			seenOffset = true
		default:
			return nil, p.errf(p.peek().pos, "trailing input at %q", p.peek().text)
		}
	}
	return q, nil
}

// MustParse is Parse for tests and fixtures; it panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// Loc renders a byte offset into input as "line L:C (offset N)", counting
// lines from 1 and columns in bytes from 1 — the location format every
// parse error carries.
func Loc(input string, off int) string {
	if off > len(input) {
		off = len(input)
	}
	line, col := 1, 1
	for i := 0; i < off; i++ {
		if input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("line %d:%d (offset %d)", line, col, off)
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokVar
	tokIRI
	tokLiteral
	tokWord // bare word or keyword
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokDot
	tokStar
	tokOp // comparison or boolean operator: = != < <= > >= && || !
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	errf := func(off int, format string, args ...any) error {
		return fmt.Errorf("sparql: "+format+" at %s", append(args, Loc(input, off))...)
	}
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == '#': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "!", i})
				i++
			}
		case c == '&':
			if i+1 < n && input[i+1] == '&' {
				toks = append(toks, token{tokOp, "&&", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected character %q (want &&)", c)
			}
		case c == '|':
			if i+1 < n && input[i+1] == '|' {
				toks = append(toks, token{tokOp, "||", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected character %q (want ||)", c)
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '?' || c == '$':
			start := i + 1
			i++
			for i < n && isNameByte(input[i]) {
				i++
			}
			if i == start {
				return nil, errf(start-1, "empty variable name")
			}
			toks = append(toks, token{tokVar, input[start:i], start})
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
				break
			}
			// `<` opens an IRI iff a matching `>` appears before any
			// whitespace; otherwise it is the less-than operator (so
			// `FILTER(?x < ?y)` and `<iri>` coexist).
			j := i + 1
			for j < n && input[j] != '>' && !unicode.IsSpace(rune(input[j])) {
				j++
			}
			if j < n && input[j] == '>' {
				toks = append(toks, token{tokIRI, input[i+1 : j], i})
				i = j + 1
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != quote {
				if input[j] == '\\' && j+1 < n {
					j++
					switch input[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '\\', '"', '\'':
						sb.WriteByte(input[j])
					default:
						return nil, errf(j, "unknown escape \\%c", input[j])
					}
				} else {
					sb.WriteByte(input[j])
				}
				j++
			}
			if j >= n {
				return nil, errf(i, "unterminated literal")
			}
			toks = append(toks, token{tokLiteral, sb.String(), i})
			i = j + 1
		case isNameByte(c) || c == ':':
			start := i
			for i < n && (isNameByte(input[i]) || input[i] == ':') {
				i++
			}
			toks = append(toks, token{tokWord, input[start:i], start})
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

type parser struct {
	input string
	toks  []token
	i     int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }
func (p *parser) isWord(w string) bool {
	t := p.peek()
	return t.kind == tokWord && strings.EqualFold(t.text, w)
}

func (p *parser) isOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

// errf builds a parse error carrying the line:column (and byte offset)
// location of the offending token.
func (p *parser) errf(off int, format string, args ...any) error {
	return fmt.Errorf("sparql: "+format+" at %s", append(args, Loc(p.input, off))...)
}

func (p *parser) keyword(w string) error {
	if !p.isWord(w) {
		return p.errf(p.peek().pos, "expected %s, got %q", w, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expect(k tokKind) error {
	if p.peek().kind != k {
		return p.errf(p.peek().pos, "unexpected token %q", p.peek().text)
	}
	p.next()
	return nil
}

// intWord consumes a bare integer (LIMIT/OFFSET argument).
func (p *parser) intWord() (int, error) {
	t := p.peek()
	if t.kind != tokWord {
		return 0, p.errf(t.pos, "expected integer, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf(t.pos, "expected integer, got %q", t.text)
	}
	p.next()
	return n, nil
}

// group parses `{ … }` and returns its algebra translation.
func (p *parser) group() (Expr, error) {
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var acc Expr
	var bgp BGP
	var conds []Condition

	flushBGP := func() {
		if bgp != nil {
			acc = joinExpr(acc, bgp)
			bgp = nil
		}
	}

	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			flushBGP()
			if acc == nil {
				acc = BGP{}
			}
			// FILTERs constrain the whole group, wherever they were
			// written inside it (standard SPARQL group semantics).
			if len(conds) > 0 {
				c := conds[0]
				for _, more := range conds[1:] {
					c = CondAnd{L: c, R: more}
				}
				acc = Filter{Inner: acc, Cond: c}
			}
			return acc, nil
		case t.kind == tokEOF:
			return nil, p.errf(t.pos, "unterminated group")
		case t.kind == tokDot:
			p.next() // separator
		case p.isWord("FILTER"):
			p.next()
			c, err := p.filterCond()
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
		case p.isWord("OPTIONAL"):
			p.next()
			sub, err := p.groupOrUnion()
			if err != nil {
				return nil, err
			}
			flushBGP()
			if acc == nil {
				acc = BGP{}
			}
			acc = Optional{L: acc, R: sub}
		case t.kind == tokLBrace:
			sub, err := p.groupOrUnion()
			if err != nil {
				return nil, err
			}
			flushBGP()
			acc = joinExpr(acc, sub)
		default:
			tp, err := p.triplePattern()
			if err != nil {
				return nil, err
			}
			bgp = append(bgp, tp)
		}
	}
}

// groupOrUnion parses `{…} (UNION {…})*`.
func (p *parser) groupOrUnion() (Expr, error) {
	e, err := p.group()
	if err != nil {
		return nil, err
	}
	for p.isWord("UNION") {
		p.next()
		r, err := p.group()
		if err != nil {
			return nil, err
		}
		e = Union{L: e, R: r}
	}
	return e, nil
}

func joinExpr(acc, e Expr) Expr {
	if acc == nil {
		return e
	}
	// Merge adjacent BGPs to keep trees small.
	if lb, ok := acc.(BGP); ok {
		if rb, ok := e.(BGP); ok {
			return append(append(BGP{}, lb...), rb...)
		}
	}
	return And{L: acc, R: e}
}

// filterCond parses the parenthesized condition of a FILTER clause.
func (p *parser) filterCond() (Condition, error) {
	if p.peek().kind != tokLParen {
		return nil, p.errf(p.peek().pos, "expected ( after FILTER, got %q", p.peek().text)
	}
	p.next()
	c, err := p.orCond()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		return nil, p.errf(p.peek().pos, "expected ) to close FILTER, got %q", p.peek().text)
	}
	p.next()
	return c, nil
}

// orCond := andCond ( "||" andCond )*
func (p *parser) orCond() (Condition, error) {
	l, err := p.andCond()
	if err != nil {
		return nil, err
	}
	for p.isOp("||") {
		p.next()
		r, err := p.andCond()
		if err != nil {
			return nil, err
		}
		l = CondOr{L: l, R: r}
	}
	return l, nil
}

// andCond := unaryCond ( "&&" unaryCond )*
func (p *parser) andCond() (Condition, error) {
	l, err := p.unaryCond()
	if err != nil {
		return nil, err
	}
	for p.isOp("&&") {
		p.next()
		r, err := p.unaryCond()
		if err != nil {
			return nil, err
		}
		l = CondAnd{L: l, R: r}
	}
	return l, nil
}

// unaryCond := "!" unaryCond | primaryCond
func (p *parser) unaryCond() (Condition, error) {
	if p.isOp("!") {
		p.next()
		c, err := p.unaryCond()
		if err != nil {
			return nil, err
		}
		return CondNot{C: c}, nil
	}
	return p.primaryCond()
}

// primaryCond := "(" orCond ")" | "bound" "(" var ")" | operand cmp operand
func (p *parser) primaryCond() (Condition, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		c, err := p.orCond()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf(p.peek().pos, "expected ), got %q", p.peek().text)
		}
		p.next()
		return c, nil
	case p.isWord("bound"):
		p.next()
		if p.peek().kind != tokLParen {
			return nil, p.errf(p.peek().pos, "expected ( after bound, got %q", p.peek().text)
		}
		p.next()
		v := p.peek()
		if v.kind != tokVar {
			return nil, p.errf(v.pos, "expected variable in bound(), got %q", v.text)
		}
		p.next()
		if p.peek().kind != tokRParen {
			return nil, p.errf(p.peek().pos, "expected ) to close bound(), got %q", p.peek().text)
		}
		p.next()
		return Bound{Var: v.text}, nil
	default:
		l, err := p.condOperand()
		if err != nil {
			return nil, err
		}
		op := p.peek()
		if op.kind != tokOp || !isCmpOp(op.text) {
			return nil, p.errf(op.pos, "expected comparison operator, got %q", op.text)
		}
		p.next()
		r, err := p.condOperand()
		if err != nil {
			return nil, err
		}
		return Comparison{Op: op.text, L: l, R: r}, nil
	}
}

func isCmpOp(op string) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// condOperand parses a comparison operand: a variable, IRI, literal, or a
// bare word (integers become literals, other words IRIs, matching the
// triple-pattern term shorthand).
func (p *parser) condOperand() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return V(t.text), nil
	case tokIRI:
		p.next()
		return C(t.text), nil
	case tokLiteral:
		p.next()
		return CL(t.text), nil
	case tokWord:
		if strings.EqualFold(t.text, "OPTIONAL") || strings.EqualFold(t.text, "UNION") || strings.EqualFold(t.text, "FILTER") {
			return Term{}, p.errf(t.pos, "keyword %q in condition operand position", t.text)
		}
		p.next()
		if _, err := strconv.Atoi(t.text); err == nil {
			return CL(t.text), nil
		}
		return C(t.text), nil
	default:
		return Term{}, p.errf(t.pos, "unexpected token %q in condition", t.text)
	}
}

func (p *parser) triplePattern() (TriplePattern, error) {
	s, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.term(true)
	if err != nil {
		return TriplePattern{}, err
	}
	if s.Const != nil && s.Const.IsLiteral() {
		return TriplePattern{}, p.errf(p.peek().pos, "literal in subject position")
	}
	if pr.Const != nil && pr.Const.IsLiteral() {
		return TriplePattern{}, p.errf(p.peek().pos, "literal in predicate position")
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

func (p *parser) term(allowLiteral bool) (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return V(t.text), nil
	case tokIRI:
		p.next()
		return C(t.text), nil
	case tokWord:
		if strings.EqualFold(t.text, "OPTIONAL") || strings.EqualFold(t.text, "UNION") || strings.EqualFold(t.text, "FILTER") {
			return Term{}, p.errf(t.pos, "keyword %q in term position", t.text)
		}
		p.next()
		return C(t.text), nil
	case tokLiteral:
		if !allowLiteral {
			return Term{}, p.errf(t.pos, "literal %q outside object position", t.text)
		}
		p.next()
		return CL(t.text), nil
	default:
		return Term{}, p.errf(t.pos, "unexpected token %q in triple pattern", t.text)
	}
}
