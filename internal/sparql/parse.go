package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the concrete syntax
//
//	SELECT * WHERE { pattern }
//
// where pattern is a sequence of triple patterns separated by optional
// dots, sub-groups `{ … }`, `OPTIONAL { … }` clauses and `{…} UNION {…}`
// alternations. Terms are variables (?name), IRIs (<iri> or bare words)
// and literals ("text", object position only). Comment lines start with
// '#'.
//
// Juxtaposition inside a group denotes conjunction: triple patterns
// accumulate into one BGP, sub-groups and OPTIONAL clauses combine with
// the accumulated pattern via AND and OPTIONAL, exactly the standard
// SPARQL-algebra group translation.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expect(tokStar); err != nil {
		return nil, err
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	expr, err := p.group()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("sparql: trailing input at %q", p.peek().text)
	}
	return &Query{Expr: expr}, nil
}

// MustParse is Parse for tests and fixtures; it panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokVar
	tokIRI
	tokLiteral
	tokWord // bare word or keyword
	tokLBrace
	tokRBrace
	tokDot
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == '#': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '?' || c == '$':
			start := i + 1
			i++
			for i < n && isNameByte(input[i]) {
				i++
			}
			if i == start {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", start-1)
			}
			toks = append(toks, token{tokVar, input[start:i], start})
		case c == '<':
			end := strings.IndexByte(input[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at offset %d", i)
			}
			toks = append(toks, token{tokIRI, input[i+1 : i+end], i})
			i += end + 1
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != quote {
				if input[j] == '\\' && j+1 < n {
					j++
					switch input[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\', '"', '\'':
						sb.WriteByte(input[j])
					default:
						return nil, fmt.Errorf("sparql: unknown escape \\%c at offset %d", input[j], j)
					}
				} else {
					sb.WriteByte(input[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sparql: unterminated literal at offset %d", i)
			}
			toks = append(toks, token{tokLiteral, sb.String(), i})
			i = j + 1
		case isNameByte(c) || c == ':':
			start := i
			for i < n && (isNameByte(input[i]) || input[i] == ':') {
				i++
			}
			toks = append(toks, token{tokWord, input[start:i], start})
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }
func (p *parser) isWord(w string) bool {
	t := p.peek()
	return t.kind == tokWord && strings.EqualFold(t.text, w)
}

func (p *parser) keyword(w string) error {
	if !p.isWord(w) {
		return fmt.Errorf("sparql: expected %s, got %q", w, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expect(k tokKind) error {
	if p.peek().kind != k {
		return fmt.Errorf("sparql: unexpected token %q", p.peek().text)
	}
	p.next()
	return nil
}

// group parses `{ … }` and returns its algebra translation.
func (p *parser) group() (Expr, error) {
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var acc Expr
	var bgp BGP

	flushBGP := func() {
		if bgp != nil {
			acc = joinExpr(acc, bgp)
			bgp = nil
		}
	}

	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			flushBGP()
			if acc == nil {
				acc = BGP{}
			}
			return acc, nil
		case t.kind == tokEOF:
			return nil, fmt.Errorf("sparql: unterminated group")
		case t.kind == tokDot:
			p.next() // separator
		case p.isWord("OPTIONAL"):
			p.next()
			sub, err := p.groupOrUnion()
			if err != nil {
				return nil, err
			}
			flushBGP()
			if acc == nil {
				acc = BGP{}
			}
			acc = Optional{L: acc, R: sub}
		case t.kind == tokLBrace:
			sub, err := p.groupOrUnion()
			if err != nil {
				return nil, err
			}
			flushBGP()
			acc = joinExpr(acc, sub)
		default:
			tp, err := p.triplePattern()
			if err != nil {
				return nil, err
			}
			bgp = append(bgp, tp)
		}
	}
}

// groupOrUnion parses `{…} (UNION {…})*`.
func (p *parser) groupOrUnion() (Expr, error) {
	e, err := p.group()
	if err != nil {
		return nil, err
	}
	for p.isWord("UNION") {
		p.next()
		r, err := p.group()
		if err != nil {
			return nil, err
		}
		e = Union{L: e, R: r}
	}
	return e, nil
}

func joinExpr(acc, e Expr) Expr {
	if acc == nil {
		return e
	}
	// Merge adjacent BGPs to keep trees small.
	if lb, ok := acc.(BGP); ok {
		if rb, ok := e.(BGP); ok {
			return append(append(BGP{}, lb...), rb...)
		}
	}
	return And{L: acc, R: e}
}

func (p *parser) triplePattern() (TriplePattern, error) {
	s, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.term(true)
	if err != nil {
		return TriplePattern{}, err
	}
	if s.Const != nil && s.Const.IsLiteral() {
		return TriplePattern{}, fmt.Errorf("sparql: literal in subject position")
	}
	if pr.Const != nil && pr.Const.IsLiteral() {
		return TriplePattern{}, fmt.Errorf("sparql: literal in predicate position")
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

func (p *parser) term(allowLiteral bool) (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return V(t.text), nil
	case tokIRI:
		p.next()
		return C(t.text), nil
	case tokWord:
		if strings.EqualFold(t.text, "OPTIONAL") || strings.EqualFold(t.text, "UNION") {
			return Term{}, fmt.Errorf("sparql: keyword %q in term position", t.text)
		}
		p.next()
		return C(t.text), nil
	case tokLiteral:
		if !allowLiteral {
			return Term{}, fmt.Errorf("sparql: literal %q outside object position", t.text)
		}
		p.next()
		return CL(t.text), nil
	default:
		return Term{}, fmt.Errorf("sparql: unexpected token %q in triple pattern", t.text)
	}
}
