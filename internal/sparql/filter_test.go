package sparql

import (
	"strings"
	"testing"
)

func TestParseFilterComparison(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?m <budget> ?b . FILTER(?b < "100") }`)
	f, ok := q.Expr.(Filter)
	if !ok {
		t.Fatalf("Expr = %T, want Filter", q.Expr)
	}
	if _, ok := f.Inner.(BGP); !ok {
		t.Fatalf("Inner = %T, want BGP", f.Inner)
	}
	cmp, ok := f.Cond.(Comparison)
	if !ok {
		t.Fatalf("Cond = %T, want Comparison", f.Cond)
	}
	if cmp.Op != OpLt || !cmp.L.IsVar() || cmp.L.Var != "b" {
		t.Fatalf("cond = %v", cmp)
	}
	if cmp.R.IsVar() || cmp.R.Const == nil || cmp.R.Const.Value != "100" {
		t.Fatalf("right operand = %v", cmp.R)
	}
}

func TestParseFilterConnectives(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?m <dir> ?d . OPTIONAL { ?m <seq> ?s . }
		FILTER(bound(?s) || (!(?d = <kubrick>) && ?m != ?d)) }`)
	f, ok := q.Expr.(Filter)
	if !ok {
		t.Fatalf("Expr = %T, want Filter", q.Expr)
	}
	or, ok := f.Cond.(CondOr)
	if !ok {
		t.Fatalf("Cond = %T, want CondOr", f.Cond)
	}
	if _, ok := or.L.(Bound); !ok {
		t.Fatalf("or.L = %T, want Bound", or.L)
	}
	and, ok := or.R.(CondAnd)
	if !ok {
		t.Fatalf("or.R = %T, want CondAnd", or.R)
	}
	if _, ok := and.L.(CondNot); !ok {
		t.Fatalf("and.L = %T, want CondNot", and.L)
	}
}

func TestFilterVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?m <dir> ?d . FILTER(?d != <x> && bound(?other)) }`)
	vars := Vars(q.Expr)
	want := map[string]bool{"m": true, "d": true, "other": true}
	if len(vars) != len(want) {
		t.Fatalf("Vars() = %v, want %v", vars, want)
	}
	for _, v := range vars {
		if !want[v] {
			t.Fatalf("unexpected var %q in %v", v, vars)
		}
	}
}

func TestMultipleFiltersConjoin(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?m <dir> ?d . FILTER(?d != <a>) FILTER(?d != <b>) }`)
	f, ok := q.Expr.(Filter)
	if !ok {
		t.Fatalf("Expr = %T, want Filter", q.Expr)
	}
	if _, ok := f.Cond.(CondAnd); !ok {
		t.Fatalf("Cond = %T, want the two FILTERs conjoined as CondAnd", f.Cond)
	}
	if got := len(Conjuncts(f.Cond)); got != 2 {
		t.Fatalf("Conjuncts = %d, want 2", got)
	}
}

func TestParseLimitOffset(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <p> ?o . } LIMIT 10 OFFSET 5`)
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d, want 10/5", q.Limit, q.Offset)
	}
	// Either order is accepted.
	q = MustParse(`SELECT * WHERE { ?s <p> ?o . } OFFSET 5 LIMIT 10`)
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d, want 10/5", q.Limit, q.Offset)
	}
	// OFFSET 0 is legal and normalizes away.
	q = MustParse(`SELECT * WHERE { ?s <p> ?o . } OFFSET 0`)
	if q.Limit != 0 || q.Offset != 0 {
		t.Fatalf("limit/offset = %d/%d, want 0/0", q.Limit, q.Offset)
	}
	if strings.Contains(q.String(), "OFFSET") {
		t.Fatalf("OFFSET 0 survived printing: %s", q.String())
	}
}

func TestParseLimitErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT * WHERE { ?s <p> ?o . } LIMIT 0`,
		`SELECT * WHERE { ?s <p> ?o . } LIMIT -3`,
		`SELECT * WHERE { ?s <p> ?o . } LIMIT 5 LIMIT 6`,
		`SELECT * WHERE { ?s <p> ?o . } OFFSET 1 OFFSET 2`,
		`SELECT * WHERE { ?s <p> ?o . } OFFSET -1`,
		`SELECT * WHERE { ?s <p> ?o . } LIMIT ?x`,
		`SELECT * WHERE { ?s <p> ?o . } LIMIT`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT * WHERE { ?s <p> ?o . FILTER ?s = <x> }`,     // missing parens
		`SELECT * WHERE { ?s <p> ?o . FILTER(?s = ) }`,       // missing operand
		`SELECT * WHERE { ?s <p> ?o . FILTER(?s) }`,          // bare operand
		`SELECT * WHERE { ?s <p> ?o . FILTER(?s == ?o) }`,    // not an operator
		`SELECT * WHERE { ?s <p> ?o . FILTER(?s = ?o }`,      // unclosed paren
		`SELECT * WHERE { ?s <p> ?o . FILTER(bound(<x>)) }`,  // bound wants a var
		`SELECT * WHERE { ?s <p> ?o . FILTER(?s & ?o) }`,     // lone &
		`SELECT * WHERE { FILTER(?s = ?o) . ?s <p> FILTER }`, // keyword as term
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLessThanVersusIRI(t *testing.T) {
	// `<` immediately followed by a `>`-terminated word is an IRI…
	q := MustParse(`SELECT * WHERE { ?s <p> ?o . FILTER(?o = <iri>) }`)
	cmp := q.Expr.(Filter).Cond.(Comparison)
	if cmp.R.Const == nil || cmp.R.Const.Value != "iri" {
		t.Fatalf("right operand = %v, want IRI iri", cmp.R)
	}
	// …while `<` followed by whitespace is the comparison operator.
	q = MustParse(`SELECT * WHERE { ?s <p> ?o . FILTER(?o < ?s) }`)
	if op := q.Expr.(Filter).Cond.(Comparison).Op; op != OpLt {
		t.Fatalf("op = %q, want <", op)
	}
	// `<=` is never an IRI opener.
	q = MustParse(`SELECT * WHERE { ?s <p> ?o . FILTER(?o <= ?s) }`)
	if op := q.Expr.(Filter).Cond.(Comparison).Op; op != OpLe {
		t.Fatalf("op = %q, want <=", op)
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`SELECT * WHERE { ?m <dir> ?d . FILTER(?d != <kubrick>) }`,
		`SELECT * WHERE { ?m <dir> ?d . FILTER((?d != <a> && bound(?d)) || !(?m = ?d)) }`,
		`SELECT * WHERE { { ?m <dir> ?d . FILTER(?d = "x") } UNION { ?m <prod> ?d . } } LIMIT 3 OFFSET 1`,
		`SELECT * WHERE { ?m <budget> ?b . FILTER(?b >= 100) } LIMIT 7`,
	} {
		q1 := MustParse(src)
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if got := q2.String(); got != printed {
			t.Fatalf("print→parse→print not a fixpoint:\n  first  %q\n  second %q", printed, got)
		}
	}
}

func TestErrorsCarryLineColumn(t *testing.T) {
	_, err := Parse("SELECT * WHERE {\n  ?s <p> ?o .\n  FILTER(?s == ?o)\n}")
	if err == nil {
		t.Fatal("Parse succeeded, want error")
	}
	if !strings.Contains(err.Error(), "line 3:") {
		t.Fatalf("err = %v, want a line 3 location", err)
	}
	if !strings.Contains(err.Error(), "offset ") {
		t.Fatalf("err = %v, want byte offset alongside line:column", err)
	}
}

func TestLocCountsLinesAndColumns(t *testing.T) {
	input := "ab\ncd\nef"
	for _, tc := range []struct {
		off  int
		want string
	}{
		{0, "line 1:1 (offset 0)"},
		{2, "line 1:3 (offset 2)"},
		{3, "line 2:1 (offset 3)"},
		{7, "line 3:2 (offset 7)"},
		{99, "line 3:3 (offset 8)"}, // clamped to len(input)
	} {
		if got := Loc(input, tc.off); got != tc.want {
			t.Errorf("Loc(%d) = %q, want %q", tc.off, got, tc.want)
		}
	}
}
