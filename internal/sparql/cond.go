package sparql

// Condition is a FILTER expression: comparisons between terms, the
// boolean connectives && / || / !, and the bound(?v) built-in. Conditions
// evaluate under the SPARQL three-valued logic — an operand that is
// unbound (or a variable outside the row's schema) makes a comparison
// error rather than false, and errors propagate through the connectives
// except where short-circuiting decides the value (false && E = false,
// true || E = true).
type Condition interface {
	isCond()
	String() string
}

// Comparison operators accepted in conditions.
const (
	OpEq = "="
	OpNe = "!="
	OpLt = "<"
	OpLe = "<="
	OpGt = ">"
	OpGe = ">="
)

// Comparison is `L op R` with op one of = != < <= > >=. Equality compares
// terms (kind and value); the orderings compare values numerically when
// both parse as numbers and lexically otherwise.
type Comparison struct {
	Op   string
	L, R Term
}

// CondAnd is C1 && C2.
type CondAnd struct{ L, R Condition }

// CondOr is C1 || C2.
type CondOr struct{ L, R Condition }

// CondNot is !C.
type CondNot struct{ C Condition }

// Bound is bound(?v): true iff the row binds v. It never errors.
type Bound struct{ Var string }

func (Comparison) isCond() {}
func (CondAnd) isCond()    {}
func (CondOr) isCond()     {}
func (CondNot) isCond()    {}
func (Bound) isCond()      {}

// The printed forms re-parse to the same tree: connectives always
// parenthesize, comparisons print bare, ! always parenthesizes its
// operand.

func (c Comparison) String() string {
	return c.L.String() + " " + c.Op + " " + c.R.String()
}

func (c CondAnd) String() string {
	return "(" + c.L.String() + " && " + c.R.String() + ")"
}

func (c CondOr) String() string {
	return "(" + c.L.String() + " || " + c.R.String() + ")"
}

func (c CondNot) String() string {
	return "!(" + c.C.String() + ")"
}

func (b Bound) String() string {
	return "bound(?" + b.Var + ")"
}

// CondVars adds every variable occurring in c to set.
func CondVars(c Condition, set map[string]bool) {
	switch x := c.(type) {
	case Comparison:
		if x.L.IsVar() {
			set[x.L.Var] = true
		}
		if x.R.IsVar() {
			set[x.R.Var] = true
		}
	case CondAnd:
		CondVars(x.L, set)
		CondVars(x.R, set)
	case CondOr:
		CondVars(x.L, set)
		CondVars(x.R, set)
	case CondNot:
		CondVars(x.C, set)
	case Bound:
		set[x.Var] = true
	}
}

// Conjuncts splits the top-level && structure of c into a list of
// conjuncts — the units the planner pushes down independently.
func Conjuncts(c Condition) []Condition {
	if a, ok := c.(CondAnd); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Condition{c}
}

// ConjoinConds folds a non-empty list of conditions into one right-leaning
// && chain; it returns nil for an empty list.
func ConjoinConds(cs []Condition) Condition {
	if len(cs) == 0 {
		return nil
	}
	c := cs[len(cs)-1]
	for i := len(cs) - 2; i >= 0; i-- {
		c = CondAnd{L: cs[i], R: c}
	}
	return c
}
