package sparql

import "testing"

// FuzzParse drives the parser with arbitrary input. Two properties are
// enforced: Parse never panics (errors are fine), and any accepted query
// prints to a form the parser accepts again with an identical second
// printing — print→parse→print is a fixpoint, the invariant the planner,
// the plan cache's normalization and the cluster router's branch
// re-parsing all lean on.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`SELECT * WHERE { ?s <p> ?o . }`,
		`SELECT * WHERE { ?d directed ?m . ?d worked_with ?c . }`,
		`SELECT * WHERE { ?d directed ?m . OPTIONAL { ?d worked_with ?c . } }`,
		`SELECT * WHERE { { ?a <p> ?b . } UNION { ?a <q> ?b . } }`,
		`SELECT * WHERE { ?m <dir> ?d . FILTER(?d != <kubrick>) }`,
		`SELECT * WHERE { ?m <b> ?x . FILTER((?x >= 100 && bound(?x)) || !(?m = ?x)) }`,
		`SELECT * WHERE { ?s <p> "lit with \"escape\"" . } LIMIT 10 OFFSET 2`,
		`SELECT * WHERE { ?s ?p ?o }`,
		`SELECT * WHERE { }`,
		"SELECT * WHERE {\n # comment\n ?s <p> ?o . } LIMIT 3",
		`select * where { ?s <p> 'single' . FILTER(?s < 5) } limit 1 offset 1`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its printing %q: %v", src, printed, err)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("print→parse→print not a fixpoint:\n  input  %q\n  first  %q\n  second %q", src, printed, again)
		}
	})
}
