package sparql

import (
	"reflect"
	"strings"
	"testing"
)

// queryX1 is the paper's introductory query (X1).
const queryX1 = `
SELECT * WHERE {
  ?director directed ?movie .
  ?director worked_with ?coworker . }`

// queryX2 is (X2): the worked_with part becomes optional.
const queryX2 = `
SELECT * WHERE {
  ?director directed ?movie .
  OPTIONAL { ?director worked_with ?coworker . } }`

// queryX3 is (X3): a non-well-designed conjunction of an optional pattern
// with a triple pattern re-using the optional variable v3.
const queryX3 = `
SELECT * WHERE {
  { { ?v1 a ?v2 . } OPTIONAL { ?v3 b ?v2 . } }
  { ?v3 c ?v4 . } }`

func TestParseX1(t *testing.T) {
	q := MustParse(queryX1)
	bgp, ok := q.Expr.(BGP)
	if !ok {
		t.Fatalf("X1 should parse to a BGP, got %T", q.Expr)
	}
	want := BGP{
		{S: V("director"), P: C("directed"), O: V("movie")},
		{S: V("director"), P: C("worked_with"), O: V("coworker")},
	}
	if !reflect.DeepEqual(bgp, want) {
		t.Fatalf("parse = %v", bgp)
	}
}

func TestParseX2(t *testing.T) {
	q := MustParse(queryX2)
	opt, ok := q.Expr.(Optional)
	if !ok {
		t.Fatalf("X2 should parse to an Optional, got %T", q.Expr)
	}
	if l, ok := opt.L.(BGP); !ok || len(l) != 1 {
		t.Fatalf("X2 left = %v", opt.L)
	}
	if r, ok := opt.R.(BGP); !ok || len(r) != 1 || r[0].P.Const.Value != "worked_with" {
		t.Fatalf("X2 right = %v", opt.R)
	}
}

func TestParseX3Shape(t *testing.T) {
	q := MustParse(queryX3)
	and, ok := q.Expr.(And)
	if !ok {
		t.Fatalf("X3 should parse to And, got %T", q.Expr)
	}
	if _, ok := and.L.(Optional); !ok {
		t.Fatalf("X3 left should be Optional, got %T", and.L)
	}
}

func TestParseUnion(t *testing.T) {
	q := MustParse(`SELECT * WHERE { { ?x p ?y } UNION { ?x q ?y } UNION { ?x r ?y } }`)
	u, ok := q.Expr.(Union)
	if !ok {
		t.Fatalf("got %T", q.Expr)
	}
	if _, ok := u.L.(Union); !ok {
		t.Fatalf("left-assoc expected, left = %T", u.L)
	}
	if len(UnionFreeBranches(q.Expr)) != 3 {
		t.Fatal("want 3 branches")
	}
}

func TestParseConstantsAndLiterals(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?p <born_in> <Paris> . ?c population "70063" . }`)
	bgp := q.Expr.(BGP)
	if bgp[0].O.Const == nil || bgp[0].O.Const.Value != "Paris" {
		t.Fatalf("object = %v", bgp[0].O)
	}
	if !bgp[1].O.Const.IsLiteral() || bgp[1].O.Const.Value != "70063" {
		t.Fatalf("literal = %v", bgp[1].O)
	}
}

func TestParseVariablePredicate(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o }`)
	bgp := q.Expr.(BGP)
	if !bgp[0].P.IsVar() {
		t.Fatal("predicate variable lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * { ?s p ?o }`,                // missing WHERE
		`SELECT * WHERE { ?s p }`,             // incomplete triple
		`SELECT * WHERE { ?s p ?o`,            // unterminated group
		`SELECT * WHERE { "lit" p ?o }`,       // literal subject
		`SELECT * WHERE { ?s "lit" ?o }`,      // literal predicate
		`SELECT * WHERE { ?s p ?o } junk`,     // trailing input
		`SELECT * WHERE { ? p ?o }`,           // empty var name
		`SELECT * WHERE { ?s p "open }`,       // unterminated literal
		`SELECT * WHERE { ?s <open ?o }`,      // unterminated IRI
		`SELECT * WHERE { OPTIONAL ?x p ?y }`, // OPTIONAL without group
		`SELECT * WHERE { ?s p ?o ~ }`,        // stray char
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	q := MustParse(`
# leading comment
select * where { # inline comment? no, whole line
  ?x p ?y
}`)
	if len(q.Expr.(BGP)) != 1 {
		t.Fatal("comment handling broken")
	}
}

func TestDotSeparatorsOptional(t *testing.T) {
	a := MustParse(`SELECT * WHERE { ?x p ?y . ?y q ?z . }`)
	b := MustParse(`SELECT * WHERE { ?x p ?y ?y q ?z }`)
	if a.String() != b.String() {
		t.Fatalf("dot-insensitive parse mismatch: %s vs %s", a, b)
	}
}

func TestGroupJoin(t *testing.T) {
	// Adjacent BGP groups join; the join of two BGPs is their union, so
	// the parser merges them into one BGP (semantically identical).
	q := MustParse(`SELECT * WHERE { { ?x p ?y } { ?y q ?z } }`)
	if bgp, ok := q.Expr.(BGP); !ok || len(bgp) != 2 {
		t.Fatalf("got %T %v", q.Expr, q.Expr)
	}
	// A non-BGP group following triples joins with And.
	q2 := MustParse(`SELECT * WHERE { ?x p ?y { ?y q ?z OPTIONAL { ?z r ?w } } }`)
	if _, ok := q2.Expr.(And); !ok {
		t.Fatalf("got %T", q2.Expr)
	}
}

func TestLoneOptional(t *testing.T) {
	// OPTIONAL at group start left-joins with the empty BGP.
	q := MustParse(`SELECT * WHERE { OPTIONAL { ?x p ?y } }`)
	opt, ok := q.Expr.(Optional)
	if !ok {
		t.Fatalf("got %T", q.Expr)
	}
	if l, ok := opt.L.(BGP); !ok || len(l) != 0 {
		t.Fatalf("left = %v", opt.L)
	}
}

func TestVarsAndMand(t *testing.T) {
	q := MustParse(queryX2)
	if got := Vars(q.Expr); !reflect.DeepEqual(got, []string{"coworker", "director", "movie"}) {
		t.Fatalf("Vars = %v", got)
	}
	m := Mand(q.Expr)
	if !m["director"] || !m["movie"] || m["coworker"] {
		t.Fatalf("Mand = %v", m)
	}
}

func TestMandX3(t *testing.T) {
	// X3: v3 occurs optional in the left conjunct but mandatory in the
	// right one, so v3 ∈ mand.
	q := MustParse(queryX3)
	m := Mand(q.Expr)
	for _, v := range []string{"v1", "v2", "v3", "v4"} {
		if !m[v] {
			t.Fatalf("%s should be mandatory; mand = %v", v, m)
		}
	}
}

func TestMandUnion(t *testing.T) {
	q := MustParse(`SELECT * WHERE { { ?x p ?y } UNION { ?x q ?z } }`)
	m := Mand(q.Expr)
	if !m["x"] || m["y"] || m["z"] {
		t.Fatalf("Mand = %v", m)
	}
}

func TestWellDesigned(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{queryX1, true},
		{queryX2, true},
		{queryX3, false}, // the paper: "(X3) is not well-designed"
		{`SELECT * WHERE { ?a p ?b OPTIONAL { ?b q ?c } }`, true},
		{`SELECT * WHERE { ?a p ?b OPTIONAL { ?c q ?d } }`, true},
		// v occurs in the optional and in a later conjunct, not in Q1.
		{`SELECT * WHERE { { ?a p ?b OPTIONAL { ?a q ?v } } { ?v r ?w } }`, false},
		// nested optionals, inner var anchored in outer optional side.
		{`SELECT * WHERE { ?a p ?b OPTIONAL { ?b q ?c OPTIONAL { ?c r ?d } } }`, true},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := IsWellDesigned(q.Expr); got != c.want {
			t.Fatalf("IsWellDesigned(%s) = %v, want %v", strings.TrimSpace(c.src), got, c.want)
		}
	}
}

func TestUnionFreeBranchesDistribution(t *testing.T) {
	// (A UNION B) AND C → 2 branches of And.
	q := MustParse(`SELECT * WHERE { { { ?x p ?y } UNION { ?x q ?y } } { ?y r ?z } }`)
	br := UnionFreeBranches(q.Expr)
	if len(br) != 2 {
		t.Fatalf("branches = %d", len(br))
	}
	for _, b := range br {
		if HasUnion(b) {
			t.Fatal("branch still has UNION")
		}
		if _, ok := b.(And); !ok {
			t.Fatalf("branch = %T", b)
		}
	}
	// UNION under OPTIONAL right side also splits (over-approximation).
	q2 := MustParse(`SELECT * WHERE { ?x p ?y OPTIONAL { { ?y q ?z } UNION { ?y r ?z } } }`)
	if got := len(UnionFreeBranches(q2.Expr)); got != 2 {
		t.Fatalf("branches = %d", got)
	}
}

func TestTriples(t *testing.T) {
	q := MustParse(queryX3)
	if got := len(Triples(q.Expr)); got != 3 {
		t.Fatalf("Triples = %d, want 3", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{queryX1, queryX2, queryX3,
		`SELECT * WHERE { { ?x p ?y } UNION { ?x q "lit" } }`} {
		q := MustParse(src)
		q2 := MustParse(q.String())
		if q.String() != q2.String() {
			t.Fatalf("roundtrip: %s vs %s", q, q2)
		}
	}
}
