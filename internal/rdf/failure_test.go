package rdf

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// failWriter fails after n bytes.
type failWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		allowed := w.n - w.written
		if allowed < 0 {
			allowed = 0
		}
		w.written += allowed
		return allowed, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriterPropagatesError(t *testing.T) {
	w := NewWriter(&failWriter{n: 8})
	// Buffered writes only fail on flush or buffer overflow; force many
	// triples so the buffer spills.
	var err error
	for i := 0; i < 10_000 && err == nil; i++ {
		err = w.Write(T("subject", "predicate", "object"))
	}
	if err == nil {
		err = w.Flush()
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("err = %v, want disk full", err)
	}
	// Subsequent writes keep failing fast.
	if err := w.Write(T("a", "b", "c")); !errors.Is(err, errDiskFull) {
		t.Fatalf("sticky error lost: %v", err)
	}
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("flush after failure: %v", err)
	}
}

// failReader errors midway through the stream.
type failReader struct {
	data string
	pos  int
	n    int
}

var errIO = errors.New("io broke")

func (r *failReader) Read(p []byte) (int, error) {
	if r.pos >= r.n {
		return 0, errIO
	}
	limit := r.n - r.pos
	if limit > len(p) {
		limit = len(p)
	}
	count := copy(p[:limit], r.data[r.pos:])
	r.pos += count
	return count, nil
}

func TestReaderPropagatesIOError(t *testing.T) {
	// The failure point is line-aligned: a mid-line failure would surface
	// as a parse error on the truncated final token instead (Scanner
	// flushes buffered data as a last token on error).
	line := "<a> <p> <b> .\n"
	data := strings.Repeat(line, 100)
	_, err := ReadAll(&failReader{data: data, n: 3 * len(line)})
	if !errors.Is(err, errIO) {
		t.Fatalf("err = %v, want io error", err)
	}
}

// TestReaderHugeLine: lines beyond the default bufio.Scanner limit must
// still parse (the Reader raises the buffer cap).
func TestReaderHugeLine(t *testing.T) {
	long := strings.Repeat("x", 200_000)
	line := `<a> <p> "` + long + `" .`
	ts, err := ReadAll(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || len(ts[0].O.Value) != 200_000 {
		t.Fatal("huge literal mangled")
	}
}

func TestReadAllStopsAtFirstBadLine(t *testing.T) {
	in := "<a> <p> <b> .\ngarbage line here that cannot parse <\n<c> <p> <d> ."
	_, err := ReadAll(strings.NewReader(in))
	if err == nil {
		t.Fatal("bad line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

var _ io.Reader = (*failReader)(nil)
