package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermBasics(t *testing.T) {
	i := NewIRI("B._De_Palma")
	l := NewLiteral("70063")
	if !i.IsIRI() || i.IsLiteral() {
		t.Fatal("IRI kind confusion")
	}
	if l.IsIRI() || !l.IsLiteral() {
		t.Fatal("literal kind confusion")
	}
	if i.Key() == l.Key() {
		t.Fatal("keys collide across universes")
	}
	if NewIRI("x").Key() == NewLiteral("x").Key() {
		t.Fatal("same-value keys collide across universes")
	}
	if i.String() != "<B._De_Palma>" {
		t.Fatalf("String = %q", i.String())
	}
	if l.String() != `"70063"` {
		t.Fatalf("String = %q", l.String())
	}
}

func TestTripleConstructorsAndValidate(t *testing.T) {
	tr := T("SaintJohn", "population", "x")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tl := TL("SaintJohn", "population", "70063")
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Triple{S: NewLiteral("70063"), P: "p", O: NewIRI("x")}
	if err := bad.Validate(); err == nil {
		t.Fatal("literal subject not rejected")
	}
	if err := (Triple{S: NewIRI("s"), P: "", O: NewIRI("o")}).Validate(); err == nil {
		t.Fatal("empty predicate not rejected")
	}
}

func TestParseTriple(t *testing.T) {
	cases := []struct {
		in   string
		want Triple
	}{
		{"<a> <p> <b> .", T("a", "p", "b")},
		{"<a> <p> <b>", T("a", "p", "b")},
		{"a p b .", T("a", "p", "b")},
		{`<a> <p> "lit" .`, TL("a", "p", "lit")},
		{`<a> <p> "li\"t\\x" .`, TL("a", "p", `li"t\x`)},
		{`<a> <p> "70063"^^<http://www.w3.org/2001/XMLSchema#integer> .`, TL("a", "p", "70063")},
		{`<a> <p> "hi"@en .`, TL("a", "p", "hi")},
		{"  <a>\t<p> <b>  . ", T("a", "p", "b")},
	}
	for _, c := range cases {
		got, err := ParseTriple(c.in)
		if err != nil {
			t.Fatalf("ParseTriple(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseTriple(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTripleErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",
		"<a> <p>",
		"<a <p> <b> .",
		`"lit" <p> <b> .`,
		`<a> "lit" <b> .`,
		`<a> <p> "unterminated .`,
		"<a> <p> <b> extra .",
		"<> <p> <b> .",
		". <p> <b>",
	}
	for _, in := range bad {
		if _, err := ParseTriple(in); err == nil {
			t.Fatalf("ParseTriple(%q) succeeded, want error", in)
		}
	}
}

func TestReaderSkipsCommentsAndBlank(t *testing.T) {
	in := `
# the example database of Fig. 1(a), excerpt
<B._De_Palma> <directed> <Mission:_Impossible> .

<SaintJohn> <population> "70063" .
# done
`
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Triple{
		T("B._De_Palma", "directed", "Mission:_Impossible"),
		TL("SaintJohn", "population", "70063"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadAll = %v", got)
	}
}

func TestReaderErrorCarriesLine(t *testing.T) {
	in := "<a> <p> <b> .\n<broken\n"
	_, err := ReadAll(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	ts := []Triple{
		T("a", "p", "b"),
		TL("a", "q", `line1
line2	tabbed "quoted" back\slash`),
		T("c", "p", "a"),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Fatalf("roundtrip mismatch:\n got %v\nwant %v", got, ts)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(T("a", "p", "b"))
	_ = w.Write(T("b", "p", "c"))
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func randomLiteral(r *rand.Rand) string {
	alphabet := []rune("abc\"\\\n\t\r xyzäöü0123")
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

func TestPropertyLiteralEscapeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lit := randomLiteral(r)
		tr := TL("s", "p", lit)
		got, err := ParseTriple(tr.String())
		if err != nil {
			// Empty literal values are rejected as empty object IRI only
			// for IRIs; literals may be empty.
			return lit == "" && got.O.Value == ""
		}
		return got.O.Value == lit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
