// Package rdf provides the RDF data model of the paper's Sect. 2: triples
// (s, p, o) over two disjoint universes — objects (IRIs) and literals —
// with predicates drawn from a third universe. Literals may only occur in
// the object position (Definition 1).
//
// The package also implements a line-oriented N-Triples-style text format
// for loading and dumping graph databases.
package rdf

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two node universes.
type Kind uint8

const (
	// IRI identifies a database object (the universe O).
	IRI Kind = iota
	// Literal identifies a data value (the universe L).
	Literal
)

// Term is a subject or object: either an IRI or a literal. The paper
// abstracts IRIs to intuitive names; we do the same — Value holds the name
// without angle brackets or quotes.
type Term struct {
	Kind  Kind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// IsIRI reports whether t is an object (IRI) term.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether t is a literal term.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// Key returns a string that is unique across both universes, suitable as a
// dictionary key ("i:" + value for IRIs, "l:" + value for literals).
func (t Term) Key() string {
	if t.Kind == IRI {
		return "i:" + t.Value
	}
	return "l:" + t.Value
}

// String renders the term in N-Triples style: <iri> or "literal".
func (t Term) String() string {
	if t.Kind == IRI {
		return "<" + t.Value + ">"
	}
	return `"` + escapeLiteral(t.Value) + `"`
}

// Triple is a generalized RDF triple from O × P × (O ∪ L).
type Triple struct {
	S Term   // subject: must be an IRI
	P string // predicate IRI
	O Term   // object: IRI or literal
}

// T is a convenience constructor for an IRI-object triple.
func T(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: p, O: NewIRI(o)}
}

// TL is a convenience constructor for a literal-object triple.
func TL(s, p, lit string) Triple {
	return Triple{S: NewIRI(s), P: p, O: NewLiteral(lit)}
}

// Validate checks the well-formedness constraints of Definition 1.
func (t Triple) Validate() error {
	if !t.S.IsIRI() {
		return fmt.Errorf("rdf: subject %s is a literal; literals may only occur in object position", t.S)
	}
	if t.S.Value == "" {
		return fmt.Errorf("rdf: empty subject")
	}
	if t.P == "" {
		return fmt.Errorf("rdf: empty predicate")
	}
	if t.O.Value == "" && t.O.IsIRI() {
		return fmt.Errorf("rdf: empty object IRI")
	}
	return nil
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s <%s> %s .", t.S, t.P, t.O)
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdf: dangling escape in literal %q", s)
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in literal %q", s[i], s)
		}
	}
	return b.String(), nil
}
