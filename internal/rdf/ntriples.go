package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Reader parses the N-Triples-style text format:
//
//	<subject> <predicate> <object> .
//	<subject> <predicate> "literal" .
//	# comment lines and blank lines are skipped
//
// Plain (unbracketed, unquoted) tokens are also accepted as IRIs so that
// hand-written fixture files stay readable.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTriple(line)
		if err != nil {
			return Triple{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the whole input.
func ReadAll(r io.Reader) ([]Triple, error) {
	rd := NewReader(r)
	var out []Triple
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ParseTriple parses a single N-Triples line (the trailing dot is
// optional).
func ParseTriple(line string) (Triple, error) {
	p := &lineParser{s: line}
	sTok, sKind, err := p.token()
	if err != nil {
		return Triple{}, err
	}
	if sKind == tokLiteral {
		return Triple{}, fmt.Errorf("rdf: literal in subject position: %q", line)
	}
	pTok, pKind, err := p.token()
	if err != nil {
		return Triple{}, err
	}
	if pKind == tokLiteral {
		return Triple{}, fmt.Errorf("rdf: literal in predicate position: %q", line)
	}
	oTok, oKind, err := p.token()
	if err != nil {
		return Triple{}, err
	}
	if err := p.end(); err != nil {
		return Triple{}, err
	}
	t := Triple{S: NewIRI(sTok), P: pTok}
	if oKind == tokLiteral {
		t.O = NewLiteral(oTok)
	} else {
		t.O = NewIRI(oTok)
	}
	if err := t.Validate(); err != nil {
		return Triple{}, err
	}
	return t, nil
}

type tokKind uint8

const (
	tokIRI tokKind = iota
	tokLiteral
)

type lineParser struct {
	s   string
	pos int
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) token() (string, tokKind, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return "", 0, fmt.Errorf("rdf: unexpected end of line in %q", p.s)
	}
	switch p.s[p.pos] {
	case '<':
		end := strings.IndexByte(p.s[p.pos:], '>')
		if end < 0 {
			return "", 0, fmt.Errorf("rdf: unterminated IRI in %q", p.s)
		}
		tok := p.s[p.pos+1 : p.pos+end]
		p.pos += end + 1
		if tok == "" {
			return "", 0, fmt.Errorf("rdf: empty IRI in %q", p.s)
		}
		return tok, tokIRI, nil
	case '"':
		i := p.pos + 1
		for i < len(p.s) {
			if p.s[i] == '\\' {
				i += 2
				continue
			}
			if p.s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(p.s) {
			return "", 0, fmt.Errorf("rdf: unterminated literal in %q", p.s)
		}
		raw := p.s[p.pos+1 : i]
		p.pos = i + 1
		// Skip optional datatype/lang suffix (^^<...> or @lang).
		for p.pos < len(p.s) && p.s[p.pos] != ' ' && p.s[p.pos] != '\t' {
			p.pos++
		}
		val, err := unescapeLiteral(raw)
		if err != nil {
			return "", 0, err
		}
		return val, tokLiteral, nil
	default:
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != ' ' && p.s[p.pos] != '\t' {
			p.pos++
		}
		tok := p.s[start:p.pos]
		if tok == "." {
			return "", 0, fmt.Errorf("rdf: missing term before '.' in %q", p.s)
		}
		return tok, tokIRI, nil
	}
}

func (p *lineParser) end() error {
	p.skipSpace()
	rest := strings.TrimSpace(p.s[p.pos:])
	if rest != "" && rest != "." {
		return fmt.Errorf("rdf: trailing garbage %q in %q", rest, p.s)
	}
	return nil
}

// Writer emits triples in the same format Reader accepts.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(t.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of triples written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteAll writes all triples and flushes.
func WriteAll(w io.Writer, ts []Triple) error {
	wr := NewWriter(w)
	for _, t := range ts {
		if err := wr.Write(t); err != nil {
			return err
		}
	}
	return wr.Flush()
}
