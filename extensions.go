package dualsim

import (
	"slices"

	"dualsim/internal/core"
	"dualsim/internal/partition"
	"dualsim/internal/storage"
	"dualsim/internal/strongsim"
)

// This file exposes the two extension subsystems: strong simulation
// (Ma et al.'s topology-capturing notion, the origin of the paper's
// baseline) and the dual-simulation fingerprint index sketched in the
// paper's related-work section.

// StrongMatch is one strong simulation match: a center node whose
// diameter-bounded ball dual-simulates the whole pattern.
type StrongMatch struct {
	Center Term
	// Candidates per pattern variable, restricted to the ball.
	Candidates map[string][]Term
}

// StrongSimulate computes the strong simulation matches of a pattern:
// dual simulation confined to diameter-bounded balls. Unlike plain dual
// simulation it rejects nodes that only mimic the pattern through
// far-apart fragments (the paper's Fig. 4 counterexample).
func StrongSimulate(st *Store, p *Pattern) ([]StrongMatch, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	res := strongsim.MatchPattern(st, p.p)
	var out []StrongMatch
	for _, m := range res.Matches {
		sm := StrongMatch{
			Center:     st.Term(m.Center),
			Candidates: make(map[string][]Term),
		}
		for i, pv := range p.p.Vars() {
			nodes := make([]storage.NodeID, 0, len(m.Sim[i]))
			for n := range m.Sim[i] {
				nodes = append(nodes, n)
			}
			slices.Sort(nodes)
			terms := make([]Term, len(nodes))
			for j, n := range nodes {
				terms[j] = st.Term(n)
			}
			sm.Candidates[pv.Name] = terms
		}
		out = append(out, sm)
	}
	return out, nil
}

// Fingerprint is a condensed stand-in for a store: nodes are k-bounded
// bisimulation equivalence classes, edges connect classes. Dual
// simulation on the fingerprint over-approximates dual simulation on the
// original — a sound first pruning stage with a far smaller input.
type Fingerprint struct {
	sum *partition.Summary
	st  *Store
}

// BuildFingerprint refines the store's nodes into k-bounded bisimulation
// classes (k < 0 refines to the fixpoint) and condenses the store.
func BuildFingerprint(st *Store, k int) (*Fingerprint, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	part := partition.Refine(st, k)
	sum, err := partition.Fingerprint(st, part)
	if err != nil {
		return nil, err
	}
	return &Fingerprint{sum: sum, st: st}, nil
}

// Blocks returns the number of equivalence classes.
func (f *Fingerprint) Blocks() int { return f.sum.Part.Blocks }

// Triples returns the summary-graph size.
func (f *Fingerprint) Triples() int { return f.sum.Store.NumTriples() }

// CompressionRatio returns summary triples / original triples.
func (f *Fingerprint) CompressionRatio() float64 {
	return f.sum.CompressionRatio(f.st)
}

// CandidateCount returns, for a pattern variable, how many original
// nodes the fingerprint-level dual simulation admits — always at least
// the exact count (soundness), usually far fewer than the store size.
func (f *Fingerprint) CandidateCount(p *Pattern, varName string) int {
	lifted := f.sum.LiftedCandidates(f.st, p.p)
	i, ok := indexOfVar(p.p, varName)
	if !ok {
		return 0
	}
	return len(lifted[i])
}

func indexOfVar(p *core.Pattern, name string) (int, bool) {
	return p.VarIndex(name)
}
