package dualsim_test

import (
	"encoding/json"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/stats"
	"dualsim/internal/trace"
	"dualsim/internal/wire"
)

// TestStatsJSONFieldNames pins the wire-stable lowerCamel JSON keys of
// the stats types served by dualsimd and archived by benchtables -json:
// renaming a Go field must not silently rename the wire field.
func TestStatsJSONFieldNames(t *testing.T) {
	keysOf := func(v any) map[string]bool {
		t.Helper()
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(buf, &m); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}
	requireKeys := func(name string, got map[string]bool, want ...string) {
		t.Helper()
		for _, k := range want {
			if !got[k] {
				t.Errorf("%s: JSON misses key %q (got %v)", name, k, got)
			}
		}
	}

	es := dualsim.ExecStats{
		Stages:        []dualsim.StageStats{{Name: "prune", Duration: time.Millisecond, In: 10, Out: 4}},
		Solver:        dualsim.Stats{Rounds: 2, Evaluations: 7, Updates: 3},
		TriplesBefore: 10, TriplesAfter: 4, Results: 2, Epoch: 1, Duration: time.Millisecond,
		Operators:     []dualsim.OperatorStats{{Op: "scan", Detail: "?s <p> ?o", EstRows: 4, Rows: 4}},
		PlanDecisions: []string{"bgp: reordered 2 patterns sparsest-first"},
	}
	requireKeys("ExecStats", keysOf(es),
		"stages", "solver", "triplesBefore", "triplesAfter", "results", "cacheHit", "epoch", "duration",
		"operators", "planDecisions")
	requireKeys("StageStats", keysOf(es.Stages[0]), "name", "duration", "in", "out")
	requireKeys("Stats", keysOf(es.Solver), "rounds", "evaluations", "updates")
	requireKeys("OperatorStats", keysOf(es.Operators[0]), "op", "detail", "estRows", "rows")
	requireKeys("OperatorStats(analyzed)",
		keysOf(dualsim.OperatorStats{Op: "scan", NextCalls: 2, Time: time.Millisecond, Depth: 1}),
		"nextCalls", "time", "depth")

	// The trace subtree rides inside the stats trailer under "trace" —
	// on ExecStats, ApplyStats and BatchStats alike — and drops out
	// entirely when the request was untraced.
	tr := trace.New("query")
	requireKeys("ExecStats(traced)", keysOf(dualsim.ExecStats{Trace: tr.Root()}), "trace")
	requireKeys("ApplyStats(traced)", keysOf(dualsim.ApplyStats{Trace: tr.Root()}), "trace")
	requireKeys("BatchStats(traced)", keysOf(dualsim.BatchStats{Trace: tr.Root()}), "trace")
	requireKeys("trace.Span", keysOf(trace.Span{TraceID: "x", Name: "query", Duration: time.Millisecond,
		Attrs: map[string]string{"k": "v"}, Counters: map[string]int64{"rows": 1},
		Children: []*trace.Span{{Name: "c"}}}),
		"traceID", "name", "duration", "attrs", "counters", "children")
	for _, name := range []string{"ExecStats", "ApplyStats", "BatchStats"} {
		keys := map[string]map[string]bool{
			"ExecStats":  keysOf(dualsim.ExecStats{}),
			"ApplyStats": keysOf(dualsim.ApplyStats{}),
			"BatchStats": keysOf(dualsim.BatchStats{}),
		}[name]
		if keys["trace"] {
			t.Errorf("%s: untraced stats serialize a trace key", name)
		}
	}

	requireKeys("Explain", keysOf(dualsim.Explain{Query: "q", Operators: []dualsim.OperatorStats{{Op: "scan"}}}),
		"query", "epoch", "operators")
	requireKeys("PrepareStats", keysOf(dualsim.PrepareStats{PlanTime: time.Millisecond, ParseTime: time.Microsecond}),
		"planTime", "parseTime")
	// A materializing engine reports no operator tree: both fields drop
	// out of the wire form entirely rather than serializing as null.
	if keys := keysOf(dualsim.ExecStats{}); keys["operators"] || keys["planDecisions"] {
		t.Errorf("empty operators/planDecisions not omitted: %v", keys)
	}
	// An operator with no estimate or detail (e.g. a hash join) keeps
	// its mandatory keys and drops the optional ones.
	opKeys := keysOf(dualsim.OperatorStats{Op: "hashjoin"})
	if !opKeys["op"] || !opKeys["rows"] {
		t.Errorf("OperatorStats mandatory keys missing: %v", opKeys)
	}
	if opKeys["detail"] || opKeys["estRows"] {
		t.Errorf("OperatorStats optional zero keys not omitted: %v", opKeys)
	}

	// Resource accounting and the statement fingerprint ride inside the
	// stats trailer; the internal StatementText carrier must never leak
	// onto the wire.
	requireKeys("ExecStats(resources)",
		keysOf(dualsim.ExecStats{
			Resources:   &dualsim.Resources{PeakBytes: 64, RowsBuffered: 2},
			Fingerprint: "deadbeefcafef00d", StatementText: "internal",
		}),
		"resources", "fingerprint")
	requireKeys("Resources", keysOf(dualsim.Resources{PeakBytes: 64, RowsBuffered: 2}),
		"peakBytes", "rowsBuffered")
	{
		keys := keysOf(dualsim.ExecStats{StatementText: "internal"})
		if keys["resources"] || keys["fingerprint"] {
			t.Errorf("empty resources/fingerprint not omitted: %v", keys)
		}
		if keys["statementText"] || keys["StatementText"] {
			t.Errorf("StatementText leaked onto the wire: %v", keys)
		}
	}
	requireKeys("stats.Statement", keysOf(stats.Statement{
		Fingerprint: "deadbeefcafef00d", Query: "SELECT * WHERE { ?v0 <p> ?v1 }",
		Calls: 3, Errors: 1, Timeouts: 1, Shed: 1, Rows: 6, CacheHits: 2,
		TotalTime: time.Second, MeanTime: time.Second / 3,
		P50: time.Millisecond, P95: time.Millisecond, P99: time.Millisecond,
		MaxMemBytes: 64, RowsBuffered: 2, EstErrorRows: 1,
		LastSlowTraceID: "t1", LatencyBuckets: []int64{1, 2, 3},
	}),
		"fingerprint", "query", "calls", "errors", "timeouts", "shed", "rows", "cacheHits",
		"totalTime", "meanTime", "p50", "p95", "p99",
		"maxMemBytes", "rowsBuffered", "estErrorRows", "lastSlowTraceID", "latencyBuckets")
	requireKeys("StatementsResponse", keysOf(wire.StatementsResponse{
		Statements: []stats.Statement{}, Tracked: 1, Evicted: 2,
		LatencyBounds: []float64{0.001}, Shards: 2,
	}),
		"statements", "tracked", "evicted", "latencyBounds", "shards")
	// A never-slow, never-failing statement keeps its mandatory counters
	// and sheds the optional zeros.
	if keys := keysOf(stats.Statement{Fingerprint: "f", Query: "q", Calls: 1}); keys["errors"] ||
		keys["shed"] || keys["maxMemBytes"] || keys["lastSlowTraceID"] {
		t.Errorf("Statement zero counters not omitted: %v", keys)
	} else if !keys["rows"] || !keys["cacheHits"] {
		t.Errorf("Statement mandatory keys missing: %v", keys)
	}

	requireKeys("PlanCacheStats", keysOf(dualsim.PlanCacheStats{Capacity: 4, Hits: 1, Misses: 1}),
		"capacity", "size", "hits", "misses")

	requireKeys("BatchStats", keysOf(dualsim.BatchStats{Requests: 2, CacheHits: 1, Results: 3, Duration: time.Second}),
		"requests", "cacheHits", "results", "duration")

	requireKeys("ApplyStats", keysOf(dualsim.ApplyStats{Epoch: 1, Added: 2, Deleted: 1, Duration: time.Second}),
		"epoch", "added", "deleted", "overlaySize", "duration")
	requireKeys("ApplyStats(durable)",
		keysOf(dualsim.ApplyStats{WALBytes: 64, FsyncLatency: time.Millisecond, Checkpointed: true}),
		"walBytes", "fsyncLatency", "checkpointed")

	requireKeys("CheckpointStats",
		keysOf(dualsim.CheckpointStats{Epoch: 3, SnapshotBytes: 1024, WALReclaimed: 128, Duration: time.Second}),
		"epoch", "snapshotBytes", "walReclaimed", "duration")

	requireKeys("PersistStats", keysOf(dualsim.PersistStats{Durable: true, WALBytes: 1, Checkpoints: 1}),
		"durable", "walBytes", "walRecords", "checkpoints", "lastCheckpointEpoch", "snapshotBytes",
		"checkpointFailures")

	// omitempty drops flags whose zero value carries no information…
	if keys := keysOf(dualsim.ApplyStats{}); keys["noOp"] || keys["compacted"] || keys["fingerprintRebuilt"] ||
		keys["walBytes"] || keys["fsyncLatency"] || keys["checkpointed"] {
		t.Errorf("ApplyStats zero flags not omitted: %v", keys)
	}
	// …but meaningful zeros stay (a false cacheHit is a miss, not absence).
	if keys := keysOf(dualsim.ExecStats{}); !keys["cacheHit"] {
		t.Errorf("ExecStats.cacheHit must serialize when false: %v", keys)
	}
}

// TestBatchStatsSummarize covers the aggregate the /v1/batch endpoint
// reports.
func TestBatchStatsSummarize(t *testing.T) {
	hit := &dualsim.ExecStats{CacheHit: true, Results: 3}
	miss := &dualsim.ExecStats{Results: 1}
	out := []dualsim.BatchResult{
		{Stats: hit, Result: &dualsim.Result{}},
		{Stats: miss, Result: &dualsim.Result{}},
		{Err: dualsim.ErrClosed},
	}
	bs := dualsim.SummarizeBatch(out, 2*time.Second)
	if bs.Requests != 3 || bs.Failed != 1 || bs.CacheHits != 1 || bs.Results != 4 || bs.Duration != 2*time.Second {
		t.Fatalf("BatchStats = %+v", bs)
	}
}
