package dualsim

import (
	"context"
	"time"

	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/prune"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
	"dualsim/internal/trace"
)

// ErrQueryMemoryExceeded is returned by an execution whose buffered
// state (hash-join build sides, DISTINCT/OFFSET seen-sets) outgrew the
// session's WithMaxQueryMemory budget. Served as HTTP 413 by dualsimd.
var ErrQueryMemoryExceeded = engine.ErrQueryMemoryExceeded

// Resources is the per-query resource accounting of a streaming
// execution: estimated peak buffered bytes and rows across all
// buffering operators, plus the budget in force. See
// ExecStats.Resources.
type Resources = engine.Resources

// OperatorStats is the per-operator counter set of a streaming
// execution: which physical operator ran (scan, extend, hashjoin,
// filter, union, limit, distinct, …), over what pattern or condition,
// the planner's cardinality estimate where one exists, and the rows it
// actually produced. Reported in ExecStats.Operators when the session
// engine is Volcano.
type OperatorStats = engine.OperatorStats

// streamEngine is the capability the Volcano engine adds over the plain
// Engine interface: compiling a query to a streaming iterator tree whose
// operator counters and planner decisions outlive the execution.
type streamEngine interface {
	Compile(st *storage.Store, q *sparql.Query) (*engine.Exec, error)
}

// Stage is one step of a prepared query's execution pipeline. The three
// built-in stages compose the paper's architecture — an optional
// fingerprint pre-filter, the dual-simulation pruning, and the engine
// evaluation — and WithStages rearranges or drops them per session.
type Stage struct {
	name string
	run  func(ctx context.Context, x *execState, ss *StageStats) error
}

// Name identifies the stage in ExecStats.
func (s Stage) Name() string { return s.name }

// execState is the mutable state threaded through one Exec call. Every
// Exec allocates its own, so concurrent executions of one PreparedQuery
// never share mutable data.
type execState struct {
	pq       *PreparedQuery
	restrict [][]*bitvec.Vector  // fingerprint-lifted solver bounds, per branch
	rel      *core.QueryRelation // solved relation (pruning stage)
	target   *Store              // evaluation target; nil means the session store
	result   *Result
	stats    *ExecStats
}

// releaseRelation returns the solved relation's χ storage to the plan's
// per-system solver pools once an execution is over. No stage output
// retains the vectors: the pruned store is materialized by PruneStage and
// ExecStats carries scalars only.
func (x *execState) releaseRelation() {
	if x.rel != nil {
		x.rel.Release()
		x.rel = nil
	}
}

// FingerprintStage returns the pre-filter stage: it installs the
// summary-lifted candidate bounds computed at Prepare time, tightening
// the starting point of the downstream solve. The stage reports itself
// skipped when the session has no fingerprint (or lifting restricted
// nothing).
func FingerprintStage() Stage {
	return Stage{name: "fingerprint", run: func(ctx context.Context, x *execState, ss *StageStats) error {
		n := x.pq.snap.st.NumNodes()
		ss.In, ss.Out = n, n
		// Nothing to install, or the solve already ran (a WithStages
		// composition placed this stage after the pruning stage): the
		// pre-filter can constrain nothing — report it skipped rather
		// than advertise a bound that was never applied.
		if x.pq.restrict == nil || x.rel != nil {
			ss.Skipped = true
			return nil
		}
		x.restrict = x.pq.restrict
		ss.Out = x.pq.fpTightest
		return nil
	}}
}

// PruneStage returns the dual-simulation stage: solve the prepared
// system of inequalities (from the fingerprint-tightened bounds when
// present), mark the certified triples and materialize the pruned store
// for the downstream engine.
func PruneStage() Stage {
	return Stage{name: "prune", run: func(ctx context.Context, x *execState, ss *StageStats) error {
		pq := x.pq
		rel, err := pq.plan.SolveRestricted(ctx, pq.db.set.coreConfig(), x.restrict)
		if err != nil {
			return err
		}
		x.rel = rel
		x.stats.Solver = Stats{
			Rounds:      rel.Stats.Rounds,
			Evaluations: rel.Stats.Evaluations,
			Updates:     rel.Stats.Updates,
		}
		x.stats.Unsatisfiable = rel.Empty()
		p, err := prune.PruneCtx(ctx, pq.snap.st, rel)
		if err != nil {
			return err
		}
		x.stats.TriplesAfter = p.Kept
		ss.In, ss.Out = p.Total, p.Kept
		x.target = p.Store()
		return nil
	}}
}

// EvaluateStage returns the final stage: hand the (possibly pruned)
// store to the session's engine and compute the solution mappings.
func EvaluateStage() Stage {
	return Stage{name: "evaluate", run: func(ctx context.Context, x *execState, ss *StageStats) error {
		target := x.target
		if target == nil {
			target = x.pq.snap.st
		}
		ss.In = target.NumTriples()
		sp := trace.SpanFromContext(ctx)
		var res *Result
		if se, ok := x.pq.db.eng.(streamEngine); ok {
			// Streaming engine: compile to the iterator tree so the
			// per-operator counters and the optimizer's decision log
			// survive into ExecStats, then drain it to keep the
			// materializing contract of Exec.
			ex, err := se.Compile(target, x.pq.q)
			if err != nil {
				return err
			}
			if n := x.pq.db.set.maxQueryMemory; n > 0 {
				ex.SetMaxMemory(n)
			}
			if sp != nil {
				// A traced execution pays for per-operator clocks; the
				// default path never reads the clock per row.
				ex.EnableTiming()
			}
			res, err = engine.Drain(ctx, ex)
			x.stats.Operators = ex.Operators()
			x.stats.PlanDecisions = ex.Decisions()
			r := ex.Resources()
			x.stats.Resources = &r
			attachOperatorSpans(sp, x.stats.Operators)
			if err != nil {
				return err
			}
		} else {
			var err error
			res, err = x.pq.db.eng.Evaluate(ctx, target, x.pq.q)
			if err != nil {
				return err
			}
		}
		x.result = res
		x.stats.Results = res.Len()
		ss.Out = res.Len()
		return nil
	}}
}

// attachOperatorSpans grafts the executor's per-operator counters as a
// span tree under the evaluate span, rebuilding the plan-tree shape from
// the post-order operator list and each entry's Depth. No-op when sp is
// nil (tracing disabled).
func attachOperatorSpans(sp *trace.Span, ops []OperatorStats) {
	if sp == nil || len(ops) == 0 {
		return
	}
	// In a post-order walk, a node's children are exactly the pending
	// subtrees one level deeper when the node appears.
	pending := make(map[int][]*trace.Span)
	for _, op := range ops {
		s := &trace.Span{Name: "op." + op.Op, Duration: op.Time}
		if op.Detail != "" {
			s.Attrs = map[string]string{"detail": op.Detail}
		}
		s.Counters = map[string]int64{"rows": op.Rows, "nextCalls": op.NextCalls}
		if op.EstRows > 0 {
			s.Counters["estRows"] = int64(op.EstRows)
		}
		s.Children = pending[op.Depth+1]
		delete(pending, op.Depth+1)
		pending[op.Depth] = append(pending[op.Depth], s)
	}
	for _, s := range pending[0] {
		sp.Attach(s)
	}
}

// StageStats reports one pipeline stage of one execution.
//
// The JSON encoding (lowerCamel tags, durations in nanoseconds) is the
// stable wire form served by dualsimd and archived by benchtables -json;
// it does not follow Go field renames.
//
//dualsim:wire
type StageStats struct {
	// Name is the stage name ("fingerprint", "prune", "evaluate").
	Name string `json:"name"`
	// Duration is the stage's wall-clock time.
	Duration time.Duration `json:"duration"`
	// In and Out are the stage's cardinality effect: nodes (tightest
	// candidate bound) for the fingerprint stage, triples before/after
	// for the pruning stage, triples in / result rows out for the
	// evaluation stage.
	In  int `json:"in"`
	Out int `json:"out"`
	// Skipped reports that the stage had nothing to do (e.g. the
	// fingerprint stage on a session without a fingerprint).
	Skipped bool `json:"skipped,omitempty"`
}

// ExecStats reports one execution of a prepared query, stage by stage.
//
// JSON tags are part of the serving wire format (see StageStats).
//
//dualsim:wire
type ExecStats struct {
	// Stages holds per-stage timings and cardinalities in pipeline order.
	Stages []StageStats `json:"stages,omitempty"`
	// Solver is the solver effort of the pruning stage's dual-simulation
	// solve (zero when the pipeline has no pruning stage).
	Solver Stats `json:"solver"`
	// TriplesBefore and TriplesAfter frame the pruning effect; they are
	// equal when the pipeline does not prune.
	TriplesBefore int `json:"triplesBefore"`
	TriplesAfter  int `json:"triplesAfter"`
	// Results is the number of solution mappings (0 when the pipeline
	// has no evaluation stage).
	Results int `json:"results"`
	// Operators holds the streaming executor's per-operator counters,
	// outermost operator first (only when the session engine is Volcano;
	// empty for the materializing engines).
	Operators []OperatorStats `json:"operators,omitempty"`
	// PlanDecisions is the cost-based optimizer's decision log — one
	// line per join reordering, filter pushdown or LIMIT pushdown it
	// applied (only when the session engine is Volcano).
	PlanDecisions []string `json:"planDecisions,omitempty"`
	// Resources is the execution's resource accounting: estimated peak
	// buffered bytes and rows across the streaming executor's buffering
	// operators (hash-join build sides, DISTINCT/OFFSET seen-sets), and
	// the WithMaxQueryMemory budget in force. Nil for the materializing
	// engines, which do not meter.
	Resources *Resources `json:"resources,omitempty"`
	// Fingerprint identifies the statement's normalized shape — the hash
	// of the canonical query text with literals masked and variables
	// renamed positionally. It keys the workload statistics store
	// (/v1/debug/statements) and the slow-query log cross-link.
	Fingerprint string `json:"fingerprint,omitempty"`
	// StatementText is the canonical (normalized) statement text behind
	// Fingerprint. It is carried for the serving layer's statistics
	// store, not serialized per response — the statements endpoint
	// reports it once per statement instead.
	StatementText string `json:"-"`
	// Unsatisfiable reports that the solve proved the query empty (every
	// UNION branch has an empty mandatory variable, Theorem 1).
	Unsatisfiable bool `json:"unsatisfiable,omitempty"`
	// CacheHit reports that the execution reused a plan from the
	// session's plan cache (set by Query and ExecBatch; always false for
	// Prepare/Exec, which bypass the cache).
	CacheHit bool `json:"cacheHit"`
	// Epoch is the store epoch this execution answered from — the one
	// its plan was prepared on. Requests issued after an Apply report
	// the new epoch; executions of queries prepared (or pinned via
	// Snapshot) earlier keep reporting theirs.
	Epoch uint64 `json:"epoch"`
	// Duration is the end-to-end execution time.
	Duration time.Duration `json:"duration"`
	// Trace is the request's span tree when tracing was enabled
	// (?trace=1 / a traceparent header / the slow-query log): pipeline
	// stages, per-operator spans, and — on a routed query — the stitched
	// subtrees of every contacted shard. Nil by default.
	Trace *trace.Span `json:"trace,omitempty"`
}

// Stage returns the stats of the named stage, or nil if the pipeline
// did not run it.
func (s *ExecStats) Stage(name string) *StageStats {
	for i := range s.Stages {
		if s.Stages[i].Name == name {
			return &s.Stages[i]
		}
	}
	return nil
}

// JoinTime returns the evaluation stage's duration — the paper's t_DB on
// the pruned store.
func (s *ExecStats) JoinTime() time.Duration {
	if ss := s.Stage("evaluate"); ss != nil {
		return ss.Duration
	}
	return 0
}

// PruneTime returns the pruning stage's duration — the paper's
// t_SPARQLSIM.
func (s *ExecStats) PruneTime() time.Duration {
	if ss := s.Stage("prune"); ss != nil {
		return ss.Duration
	}
	return 0
}

// PrunedRatio returns the pruned fraction in [0, 1].
func (s *ExecStats) PrunedRatio() float64 {
	if s.TriplesBefore == 0 {
		return 0
	}
	return 1 - float64(s.TriplesAfter)/float64(s.TriplesBefore)
}
