package dualsim_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/queries"
)

// Three distinct queries over the fig1a store, for cache-eviction tests.
const (
	throughputQ1 = queries.QueryX1
	throughputQ2 = queries.QueryX2
	throughputQ3 = `SELECT * WHERE { ?director <awarded> ?prize . }`
)

// TestQueryPlanCache: db.Query plans a text once, serves repeats from the
// LRU cache (reported via ExecStats.CacheHit and CacheStats), normalizes
// whitespace, and evicts least-recently-used plans beyond capacity.
func TestQueryPlanCache(t *testing.T) {
	db, err := dualsim.Open(fig1a(t), dualsim.WithPlanCache(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	res, stats, err := db.Query(ctx, throughputQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || stats.CacheHit {
		t.Fatalf("first Query: %d results, hit=%v", res.Len(), stats.CacheHit)
	}
	res, stats, err = db.Query(ctx, throughputQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !stats.CacheHit {
		t.Fatalf("second Query: %d results, hit=%v, want a cache hit", res.Len(), stats.CacheHit)
	}
	if got := db.PlanBuilds(); got != 1 {
		t.Fatalf("PlanBuilds = %d after repeated Query, want 1", got)
	}

	// Whitespace-normalized texts share a slot.
	reformatted := strings.Join(strings.Fields(throughputQ1), "\n\t ")
	if _, stats, err = db.Query(ctx, reformatted); err != nil || !stats.CacheHit {
		t.Fatalf("reformatted text: hit=%v err=%v, want cache hit", stats != nil && stats.CacheHit, err)
	}

	// Fill beyond capacity 2: Q2 then Q3 evicts Q1 (the LRU entry).
	if _, _, err := db.Query(ctx, throughputQ2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(ctx, throughputQ3); err != nil {
		t.Fatal(err)
	}
	cs := db.CacheStats()
	if cs.Capacity != 2 || cs.Size != 2 || cs.Evictions != 1 {
		t.Fatalf("cache stats after overflow = %+v, want cap 2, size 2, 1 eviction", cs)
	}
	if cs.Hits != 2 || cs.Misses != 3 {
		t.Fatalf("cache traffic = %+v, want 2 hits / 3 misses", cs)
	}
	builds := db.PlanBuilds()
	if builds != 3 {
		t.Fatalf("PlanBuilds = %d, want 3 (one per distinct query)", builds)
	}

	// The evicted Q1 must re-plan; the resident Q3 must not.
	if _, stats, err = db.Query(ctx, throughputQ1); err != nil || stats.CacheHit {
		t.Fatalf("evicted query served from cache (hit=%v err=%v)", stats != nil && stats.CacheHit, err)
	}
	if db.PlanBuilds() != builds+1 {
		t.Fatalf("eviction did not force a re-plan: builds %d -> %d", builds, db.PlanBuilds())
	}
	if _, stats, err = db.Query(ctx, throughputQ3); err != nil || !stats.CacheHit {
		t.Fatalf("resident query missed (hit=%v err=%v)", stats != nil && stats.CacheHit, err)
	}

	// Parse errors pass through and cache nothing.
	if _, _, err := db.Query(ctx, "SELECT nonsense"); err == nil {
		t.Fatal("garbage accepted")
	}

	// Without a cache, Query degrades to Exec and reports zero stats.
	plain, err := dualsim.Open(fig1a(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := plain.Query(ctx, throughputQ1); err != nil || stats.CacheHit {
		t.Fatalf("uncached Query: hit=%v err=%v", stats != nil && stats.CacheHit, err)
	}
	if cs := plain.CacheStats(); cs != (dualsim.PlanCacheStats{}) {
		t.Fatalf("uncached session reported cache stats %+v", cs)
	}
}

// TestQueryPlanCacheConcurrent (-race): many goroutines hammer one shared
// plan cache with a rotating workload that forces hits, misses and
// evictions concurrently. Results stay correct; misses of one text are
// single-flighted so each distinct query plans at most once per residency.
func TestQueryPlanCacheConcurrent(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st, dualsim.WithPlanCache(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	want := map[string]int{}
	for _, src := range []string{throughputQ1, throughputQ2, throughputQ3} {
		res, _, err := db.Exec(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		want[src] = res.Len()
	}

	const goroutines = 8
	const iters = 30
	srcs := []string{throughputQ1, throughputQ2, throughputQ3}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := srcs[(g+i)%len(srcs)]
				res, stats, err := db.Query(context.Background(), src)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != want[src] {
					errs <- fmt.Errorf("query %q: %d results, want %d", src, res.Len(), want[src])
					return
				}
				if stats == nil || stats.Results != res.Len() {
					errs <- errors.New("per-exec stats missing under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cs := db.CacheStats()
	total := goroutines * iters
	// Every Query is exactly one recorded lookup; the priming Execs
	// bypassed the cache.
	if cs.Hits+cs.Misses != int64(total) {
		t.Fatalf("lookups = %d hits + %d misses, want %d", cs.Hits, cs.Misses, total)
	}
	if cs.Hits == 0 || cs.Misses == 0 || cs.Evictions == 0 {
		t.Fatalf("workload did not exercise hits, misses and evictions: %+v", cs)
	}
	// Single-flight on miss: plans built == misses that reached the
	// builder (each recorded miss either built or picked up a concurrent
	// build; builds can never exceed misses).
	if db.PlanBuilds()-3 > cs.Misses {
		t.Fatalf("plan builds %d exceed recorded misses %d", db.PlanBuilds()-3, cs.Misses)
	}
}

// TestExecBatch: positional results, plan-cache reuse across requests,
// prepared-query requests, and collect-by-default error semantics.
func TestExecBatch(t *testing.T) {
	db, err := dualsim.Open(fig1a(t), dualsim.WithPlanCache(8), dualsim.WithBatchWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	pq, err := db.Prepare(throughputQ3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []dualsim.BatchRequest{
		{Src: throughputQ1},
		{Src: throughputQ2},
		{Src: throughputQ1}, // repeat: served by the cached plan
		{Prepared: pq},
		{Src: "SELECT broken"}, // parse error, isolated to this slot
		{},                     // neither Src nor Prepared
	}
	out, err := db.ExecBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("collecting batch returned %v", err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(out), len(reqs))
	}
	for i, wantLen := range map[int]int{0: 2, 1: 4, 2: 2, 3: 3} {
		r := out[i]
		if r.Err != nil || r.Result == nil || r.Result.Len() != wantLen {
			t.Fatalf("request %d = {len=%v err=%v}, want %d rows", i, r.Result, r.Err, wantLen)
		}
		if r.Stats == nil || r.Stats.Results != wantLen {
			t.Fatalf("request %d missing per-request ExecStats: %+v", i, r.Stats)
		}
	}
	if out[4].Err == nil || out[5].Err == nil {
		t.Fatalf("bad requests not reported: %v / %v", out[4].Err, out[5].Err)
	}
	if !out[2].Stats.CacheHit {
		t.Fatal("repeated batch request did not hit the plan cache")
	}
	if builds := db.PlanBuilds(); builds != 3 { // Q1, Q2, and the explicit Prepare
		t.Fatalf("PlanBuilds = %d, want 3 (batch must reuse plans)", builds)
	}

	// Fail-fast: the parse error aborts the batch and surfaces as the
	// call error.
	_, err = db.ExecBatch(context.Background(),
		[]dualsim.BatchRequest{{Src: "SELECT broken"}, {Src: throughputQ1}},
		dualsim.BatchFailFast(), dualsim.BatchWorkers(1))
	if err == nil {
		t.Fatal("fail-fast batch returned nil error")
	}

	// Empty batch and closed session.
	if out, err := db.ExecBatch(context.Background(), nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	db.Close()
	if _, err := db.ExecBatch(context.Background(), reqs); !errors.Is(err, dualsim.ErrClosed) {
		t.Fatalf("ExecBatch on closed session: %v", err)
	}
}

// TestExecBatchCancellation (-race): cancelling the context mid-batch on
// a large store aborts promptly; ExecBatch reports ctx.Err() and every
// request either completed or carries the cancellation error.
func TestExecBatchCancellation(t *testing.T) {
	st, err := dualsim.GenerateLUBMStore(24, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, dualsim.WithPlanCache(4), dualsim.WithBatchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	src := `SELECT * WHERE {
		?publication <rdf:type> <ub:Publication> .
		?publication <ub:publicationAuthor> ?student .
		?student <ub:memberOf> ?department . }`

	// Baseline duration of one execution, to place the deadline mid-batch.
	start := time.Now()
	if _, _, err := db.Query(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	one := time.Since(start)

	reqs := make([]dualsim.BatchRequest, 16)
	for i := range reqs {
		reqs[i] = dualsim.BatchRequest{Src: src}
	}
	ctx, cancel := context.WithTimeout(context.Background(), one*2)
	defer cancel()
	start = time.Now()
	out, err := db.ExecBatch(ctx, reqs)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecBatch(deadline) err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 16*one+time.Second {
		t.Fatalf("cancelled batch ran %v (one exec: %v) — not aborted", elapsed, one)
	}
	completed, cancelled := 0, 0
	for i, r := range out {
		switch {
		case r.Err == nil && r.Result != nil:
			completed++
		case errors.Is(r.Err, context.DeadlineExceeded):
			cancelled++
		default:
			t.Fatalf("request %d in limbo: result=%v err=%v", i, r.Result, r.Err)
		}
	}
	if cancelled == 0 {
		t.Fatalf("deadline cancelled nothing (%d completed) — test window too long?", completed)
	}
}

// TestExecBatchConcurrentCallers (-race): several goroutines issue
// batches through one session and shared cache simultaneously.
func TestExecBatchConcurrentCallers(t *testing.T) {
	db, err := dualsim.Open(fig1a(t), dualsim.WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reqs := []dualsim.BatchRequest{
		{Src: throughputQ1}, {Src: throughputQ2}, {Src: throughputQ3}, {Src: throughputQ1},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := db.ExecBatch(context.Background(), reqs)
			if err != nil {
				errs <- err
				return
			}
			if out[0].Err != nil || out[0].Result.Len() != 2 || out[1].Result.Len() != 4 {
				errs <- errors.New("concurrent batch results wrong")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if builds := db.PlanBuilds(); builds != 3 {
		t.Fatalf("PlanBuilds = %d across concurrent batches, want 3", builds)
	}
}
