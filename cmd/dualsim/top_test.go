package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRunTopOneShot pins the -top one-shot path: a single GET against
// /v1/debug/statements rendered as a table.
func TestRunTopOneShot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/debug/statements" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"statements":[{"fingerprint":"deadbeefcafef00d","query":"SELECT * WHERE { ?v0 \u003cdirected\u003e ?v1 }","calls":7,"rows":21,"cacheHits":6,"totalTime":3500000,"meanTime":500000,"p50":400000,"p95":900000,"p99":950000,"maxMemBytes":2048}],"tracked":1}`))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runTop(context.Background(), srv.URL, 0, 0, &out); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	got := out.String()
	for _, want := range []string{"deadbeefcafef00d", "FINGERPRINT", "1 statements tracked", "2.0KiB", "<directed>"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTopLimit pins -limit truncation of the rendered table.
func TestRunTopLimit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"statements":[{"fingerprint":"aaaaaaaaaaaaaaaa","query":"A","calls":2},{"fingerprint":"bbbbbbbbbbbbbbbb","query":"B","calls":1}],"tracked":2}`))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runTop(context.Background(), srv.URL, 0, 1, &out); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	if !strings.Contains(out.String(), "aaaaaaaaaaaaaaaa") || strings.Contains(out.String(), "bbbbbbbbbbbbbbbb") {
		t.Errorf("limit 1 should keep only the top row:\n%s", out.String())
	}
}
