package main

import (
	"os"
	"path/filepath"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

func fixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1a.nt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	if err := dualsim.DumpNTriples(f, st); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEvaluateModes(t *testing.T) {
	data := fixture(t)
	for _, engine := range []string{"hash", "index"} {
		if err := run(data, "", queries.QueryX1, "evaluate", engine, 1, "", false); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
	// With pruning enabled.
	if err := run(data, "", queries.QueryX2, "evaluate", "hash", 0, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimulateMode(t *testing.T) {
	data := fixture(t)
	if err := run(data, "", queries.QueryX1, "simulate", "hash", 0, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPruneMode(t *testing.T) {
	data := fixture(t)
	out := filepath.Join(t.TempDir(), "pruned.nt")
	if err := run(data, "", queries.QueryX1, "prune", "hash", 0, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.LoadNTriples(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 4 {
		t.Fatalf("pruned dump has %d triples, want 4", st.NumTriples())
	}
}

func TestRunQueryFromFile(t *testing.T) {
	data := fixture(t)
	qf := filepath.Join(t.TempDir(), "q.rq")
	if err := os.WriteFile(qf, []byte(queries.QueryX1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(data, qf, "", "evaluate", "hash", 0, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyzeMode(t *testing.T) {
	// analyze needs no data file.
	if err := run("", "", queries.QueryX3, "analyze", "hash", 0, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	data := fixture(t)
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing data", func() error { return run("", "", queries.QueryX1, "evaluate", "hash", 0, "", false) }},
		{"missing query", func() error { return run(data, "", "", "evaluate", "hash", 0, "", false) }},
		{"bad engine", func() error { return run(data, "", queries.QueryX1, "evaluate", "nope", 0, "", false) }},
		{"bad mode", func() error { return run(data, "", queries.QueryX1, "nope", "hash", 0, "", false) }},
		{"bad query", func() error { return run(data, "", "SELECT", "evaluate", "hash", 0, "", false) }},
		{"bad data path", func() error { return run("/no/such.nt", "", queries.QueryX1, "evaluate", "hash", 0, "", false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}
