package main

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

// TestMain doubles the test binary as the dualsim CLI when re-executed
// with DUALSIM_CLI_MAIN=1 — the hook TestMainExitCodes uses to assert
// process-level exit codes without building the command separately.
func TestMain(m *testing.M) {
	if os.Getenv("DUALSIM_CLI_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func fixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1a.nt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	if err := dualsim.DumpNTriples(f, st); err != nil {
		t.Fatal(err)
	}
	return path
}

// do runs the CLI with a background context and defaults for the fields
// a test does not care about.
func do(t *testing.T, cfg cliConfig) error {
	t.Helper()
	return run(context.Background(), cfg)
}

func TestRunEvaluateModes(t *testing.T) {
	data := fixture(t)
	for _, engine := range []string{"hash", "index"} {
		if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "evaluate", engine: engine, limit: 1}); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
	// Through the pruning pipeline.
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX2, mode: "evaluate", engine: "hash", prune: true}); err != nil {
		t.Fatal(err)
	}
	// Full pipeline: fingerprint pre-filter + pruning + workers.
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "evaluate", engine: "hash", prune: true, fingerprintK: 2, workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimulateMode(t *testing.T) {
	data := fixture(t)
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "simulate", engine: "hash"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPruneMode(t *testing.T) {
	data := fixture(t)
	out := filepath.Join(t.TempDir(), "pruned.nt")
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "prune", engine: "hash", out: out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.LoadNTriples(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 4 {
		t.Fatalf("pruned dump has %d triples, want 4", st.NumTriples())
	}
}

func TestRunQueryFromFile(t *testing.T) {
	data := fixture(t)
	qf := filepath.Join(t.TempDir(), "q.rq")
	if err := os.WriteFile(qf, []byte(queries.QueryX1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := do(t, cliConfig{data: data, queryFile: qf, mode: "evaluate", engine: "hash"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRepeatMode(t *testing.T) {
	data := fixture(t)
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "evaluate",
		engine: "hash", repeat: 5, planCache: 4, limit: 1}); err != nil {
		t.Fatal(err)
	}
	// Parse errors surface through the serving path too.
	if err := do(t, cliConfig{data: data, queryText: "SELECT broken", mode: "evaluate",
		engine: "hash", repeat: 3, planCache: 4}); err == nil {
		t.Fatal("repeat mode accepted a broken query")
	}
}

func TestRunBatchMode(t *testing.T) {
	data := fixture(t)
	qf := filepath.Join(t.TempDir(), "batch.rq")
	batch := queries.QueryX1 + "\n;\n" + queries.QueryX2 + "\n;\n"
	if err := os.WriteFile(qf, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := do(t, cliConfig{data: data, queryFile: qf, mode: "evaluate",
		engine: "hash", batch: true, planCache: 4, batchWorkers: 2, limit: 1}); err != nil {
		t.Fatal(err)
	}
	// A failing query inside the batch surfaces as an error after the
	// rest completed.
	bad := queries.QueryX1 + "\n;\nSELECT broken\n"
	if err := os.WriteFile(qf, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := do(t, cliConfig{data: data, queryFile: qf, mode: "evaluate",
		engine: "hash", batch: true}); err == nil {
		t.Fatal("batch with a broken query reported success")
	}
	// Batch is evaluate-only.
	if err := do(t, cliConfig{data: data, queryText: queries.QueryX1, mode: "prune",
		engine: "hash", batch: true}); err == nil {
		t.Fatal("batch accepted a non-evaluate mode")
	}
}

func TestSplitBatch(t *testing.T) {
	got := splitBatch("a\nb\n ; \nc\n;\n\n;\n")
	if len(got) != 2 || got[0] != "a\nb" || got[1] != "c" {
		t.Fatalf("splitBatch = %q", got)
	}
	if got := splitBatch("\n;\n \n"); len(got) != 0 {
		t.Fatalf("empty batch = %q", got)
	}
}

func TestRunAnalyzeMode(t *testing.T) {
	// analyze needs no data file.
	if err := do(t, cliConfig{queryText: queries.QueryX3, mode: "analyze", engine: "hash"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelled(t *testing.T) {
	data := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, cliConfig{data: data, queryText: queries.QueryX1, mode: "evaluate", engine: "hash", prune: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	data := fixture(t)
	cases := []struct {
		name string
		cfg  cliConfig
	}{
		{"missing data", cliConfig{queryText: queries.QueryX1, mode: "evaluate", engine: "hash"}},
		{"missing query", cliConfig{data: data, mode: "evaluate", engine: "hash"}},
		{"bad engine", cliConfig{data: data, queryText: queries.QueryX1, mode: "evaluate", engine: "nope"}},
		{"bad mode", cliConfig{data: data, queryText: queries.QueryX1, mode: "nope", engine: "hash"}},
		{"bad query", cliConfig{data: data, queryText: "SELECT", mode: "evaluate", engine: "hash"}},
		{"bad data path", cliConfig{data: "/no/such.nt", queryText: queries.QueryX1, mode: "evaluate", engine: "hash"}},
	}
	for _, c := range cases {
		if do(t, c.cfg) == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

// cli re-executes this test binary as the dualsim command (see
// TestMain) and returns its exit code and stderr.
func cli(t *testing.T, args ...string) (int, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "DUALSIM_CLI_MAIN=1")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err = cmd.Run()
	code := 0
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, stderr.String()
}

// TestMainExitCodes pins the process-level contract: parse, exec and
// apply errors exit non-zero with the error on stderr; success exits 0.
func TestMainExitCodes(t *testing.T) {
	data := fixture(t)

	code, stderr := cli(t, "-data", data, "-q", queries.QueryX1, "-limit", "1")
	if code != 0 {
		t.Fatalf("clean run exited %d, stderr:\n%s", code, stderr)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"parse error", []string{"-data", data, "-q", "SELECT broken"}},
		{"missing data", []string{"-q", queries.QueryX1}},
		{"bad engine", []string{"-data", data, "-q", queries.QueryX1, "-engine", "nope"}},
		{"apply error", []string{"-data", data, "-q", queries.QueryX1, "-apply", "/no/such.nt"}},
		{"bad data path", []string{"-data", "/no/such.nt", "-q", queries.QueryX1}},
	}
	for _, c := range cases {
		code, stderr := cli(t, c.args...)
		if code == 0 {
			t.Errorf("%s: exited 0", c.name)
		}
		if !strings.Contains(stderr, "dualsim:") {
			t.Errorf("%s: error not printed to stderr, got %q", c.name, stderr)
		}
	}
}

func TestRunLiveUpdate(t *testing.T) {
	data := fixture(t)
	writeNT := func(name string, ts []dualsim.Triple) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		st, err := dualsim.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := dualsim.DumpNTriples(f, st); err != nil {
			t.Fatal(err)
		}
		return path
	}
	apply := writeNT("adds.nt", []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	})
	del := writeNT("dels.nt", []dualsim.Triple{
		dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
	})
	if err := do(t, cliConfig{
		data: data, queryText: queries.QueryX1, mode: "evaluate", engine: "hash",
		planCache: 8, applyFile: apply, delFile: del,
	}); err != nil {
		t.Fatal(err)
	}
	// -apply with -repeat is rejected.
	if err := do(t, cliConfig{
		data: data, queryText: queries.QueryX1, mode: "evaluate", engine: "hash",
		planCache: 8, repeat: 3, applyFile: apply,
	}); err == nil {
		t.Fatal("-apply with -repeat was accepted")
	}
}
