package main

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"dualsim/client"
)

// runTop renders a server's workload statistics table — the
// pg_stat_statements-style view at GET /v1/debug/statements — ordered
// by total execution time descending. With interval == 0 it prints one
// snapshot and returns; otherwise it refreshes in place until the
// context is cancelled (Ctrl-C).
func runTop(ctx context.Context, serverURL string, interval time.Duration, limit int, w io.Writer) error {
	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	for {
		resp, err := c.Statements(ctx)
		if err != nil {
			return err
		}
		if interval > 0 {
			// Clear the screen and home the cursor between refreshes so
			// the table redraws in place, top(1)-style.
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderStatements(w, resp, serverURL, limit)
		if interval <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// renderStatements prints one statements snapshot as a fixed-width
// table plus a summary line.
func renderStatements(w io.Writer, resp *client.StatementsResponse, serverURL string, limit int) {
	rows := resp.Statements
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	scope := ""
	if resp.Shards > 0 {
		scope = fmt.Sprintf(", merged across %d shards", resp.Shards)
	}
	fmt.Fprintf(w, "%s — %d statements tracked, %d evicted%s\n\n",
		serverURL, resp.Tracked, resp.Evicted, scope)
	fmt.Fprintf(w, "%-16s %8s %6s %5s %10s %10s %10s %10s %9s %6s  %s\n",
		"FINGERPRINT", "CALLS", "ERRS", "SHED", "ROWS", "TOTAL", "P50", "P95", "MEM", "HIT%", "STATEMENT")
	for i := range rows {
		st := &rows[i]
		hit := 0.0
		if st.Calls > 0 {
			hit = 100 * float64(st.CacheHits) / float64(st.Calls)
		}
		fmt.Fprintf(w, "%-16s %8d %6d %5d %10d %10s %10s %10s %9s %5.1f%%  %s\n",
			st.Fingerprint, st.Calls, st.Errors, st.Shed, st.Rows,
			shortDuration(st.TotalTime), shortDuration(st.P50), shortDuration(st.P95),
			shortBytes(st.MaxMemBytes), hit, oneLine(st.Query, 60))
	}
}

// shortDuration rounds a duration to a 4-significant-digit-ish display.
func shortDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// shortBytes renders a byte count with a binary unit suffix.
func shortBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// oneLine collapses a statement onto one truncated line.
func oneLine(s string, max int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > max {
		s = s[:max-1] + "…"
	}
	return s
}
