// Command dualsim loads a graph database and processes a query with dual
// simulation:
//
//	dualsim -data db.nt -q 'SELECT * WHERE { ?d <directed> ?m }'        # evaluate
//	dualsim -data db.nt -query q.rq -prune                              # pruning stats
//	dualsim -data db.nt -q '…' -mode simulate                           # candidate sets
//	dualsim -data db.nt -q '…' -engine index -limit 20                  # results via index-NL engine
//
// Modes:
//
//	evaluate  (default) print the solution mappings
//	simulate  print per-variable dual simulation candidate counts
//	prune     print pruning statistics; with -out, dump the pruned store
//	analyze   print the query's structural analysis (no -data needed)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dualsim"
)

func main() {
	data := flag.String("data", "", "N-Triples database file (required)")
	queryFile := flag.String("query", "", "query file")
	queryText := flag.String("q", "", "inline query text")
	mode := flag.String("mode", "evaluate", "evaluate, simulate or prune")
	engineName := flag.String("engine", "hash", "hash or index")
	limit := flag.Int("limit", 0, "print at most this many result rows (0 = all)")
	out := flag.String("out", "", "prune mode: write the pruned store here")
	doPrune := flag.Bool("prune", false, "evaluate on the pruned store instead of the full one")
	flag.Parse()

	if err := run(*data, *queryFile, *queryText, *mode, *engineName, *limit, *out, *doPrune); err != nil {
		fmt.Fprintln(os.Stderr, "dualsim:", err)
		os.Exit(1)
	}
}

func run(data, queryFile, queryText, mode, engineName string, limit int, out string, doPrune bool) error {
	src := queryText
	if src == "" {
		if queryFile == "" {
			return fmt.Errorf("provide -q or -query")
		}
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	q, err := dualsim.ParseQuery(src)
	if err != nil {
		return err
	}
	if mode == "analyze" {
		return runAnalyze(q)
	}

	if data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(data)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))

	kind := dualsim.HashJoin
	switch engineName {
	case "hash":
	case "index":
		kind = dualsim.IndexNL
	default:
		return fmt.Errorf("unknown engine %q (want hash or index)", engineName)
	}

	switch mode {
	case "simulate":
		return runSimulate(st, q)
	case "prune":
		return runPrune(st, q, out)
	case "evaluate":
		return runEvaluate(st, q, kind, limit, doPrune)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func runAnalyze(q *dualsim.Query) error {
	fmt.Printf("query: %s\n", q)
	vars := dualsim.QueryVars(q)
	mand := dualsim.MandatoryVars(q)
	mandSet := make(map[string]bool, len(mand))
	for _, v := range mand {
		mandSet[v] = true
	}
	fmt.Printf("variables (%d):\n", len(vars))
	for _, v := range vars {
		role := "optional"
		if mandSet[v] {
			role = "mandatory"
		}
		fmt.Printf("  ?%-16s %s\n", v, role)
	}
	fmt.Printf("well-designed: %v\n", dualsim.IsWellDesigned(q))
	return nil
}

func runSimulate(st *dualsim.Store, q *dualsim.Query) error {
	start := time.Now()
	rel, err := dualsim.DualSimulate(st, q, dualsim.Options{})
	if err != nil {
		return err
	}
	stats := rel.Stats()
	fmt.Printf("largest dual simulation computed in %v (%d rounds, %d evaluations)\n",
		time.Since(start).Round(time.Microsecond), stats.Rounds, stats.Evaluations)
	for _, v := range dualsim.QueryVars(q) {
		fmt.Printf("  ?%-20s %d candidates\n", v, rel.CandidateCount(v))
	}
	if rel.Empty() {
		fmt.Println("the query is unsatisfiable (empty mandatory core)")
	}
	return nil
}

func runPrune(st *dualsim.Store, q *dualsim.Query, out string) error {
	start := time.Now()
	p, err := dualsim.Prune(st, q, dualsim.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("pruning computed in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  triples before: %d\n", p.Total())
	fmt.Printf("  triples after:  %d\n", p.Kept())
	fmt.Printf("  pruned:         %.2f%%\n", 100*p.Ratio())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dualsim.DumpNTriples(f, p.Store()); err != nil {
			return err
		}
		fmt.Printf("  pruned store written to %s\n", out)
	}
	return nil
}

func runEvaluate(st *dualsim.Store, q *dualsim.Query, kind dualsim.EngineKind, limit int, doPrune bool) error {
	target := st
	if doPrune {
		start := time.Now()
		p, err := dualsim.Prune(st, q, dualsim.Options{})
		if err != nil {
			return err
		}
		target = p.Store()
		fmt.Fprintf(os.Stderr, "pruned %d -> %d triples in %v\n",
			p.Total(), p.Kept(), time.Since(start).Round(time.Microsecond))
	}
	start := time.Now()
	res, err := dualsim.Evaluate(target, q, kind)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d results in %v (%s engine)\n",
		res.Len(), time.Since(start).Round(time.Microsecond), kind)
	rows := res.Rows
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	shown := &dualsim.Result{Vars: res.Vars, Rows: rows}
	fmt.Print(shown.Format(st))
	return nil
}
