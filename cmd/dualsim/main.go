// Command dualsim loads a graph database and processes a query with dual
// simulation:
//
//	dualsim -data db.nt -q 'SELECT * WHERE { ?d <directed> ?m }'        # evaluate
//	dualsim -data db.nt -query q.rq -prune                              # pruned evaluation
//	dualsim -data db.nt -q '…' -mode simulate                           # candidate sets
//	dualsim -data db.nt -q '…' -engine index -limit 20                  # results via index-NL engine
//	dualsim -data db.nt -q '…' -prune -fingerprint 2 -timeout 30s       # full pipeline, bounded
//
// Modes:
//
//	evaluate  (default) print the solution mappings
//	simulate  print per-variable dual simulation candidate counts
//	prune     print pruning statistics; with -out, dump the pruned store
//	analyze   print the query's structural analysis (no -data needed)
//
// The command is a thin client of the session API: it opens a DB over
// the loaded store, prepares the query once and executes the pipeline
// under a cancellable context — Ctrl-C (or -timeout) interrupts the
// solver and the join engines mid-flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dualsim"
)

func main() {
	data := flag.String("data", "", "N-Triples database file (required)")
	queryFile := flag.String("query", "", "query file")
	queryText := flag.String("q", "", "inline query text")
	mode := flag.String("mode", "evaluate", "evaluate, simulate, prune or analyze")
	engineName := flag.String("engine", "hash", "hash or index")
	limit := flag.Int("limit", 0, "print at most this many result rows (0 = all)")
	out := flag.String("out", "", "prune mode: write the pruned store here")
	doPrune := flag.Bool("prune", false, "evaluate through the pruning pipeline instead of directly")
	fingerprintK := flag.Int("fingerprint", 0, "with -prune: pre-filter via a k-bounded bisimulation fingerprint (0 = off)")
	workers := flag.Int("workers", 0, "parallelize bit-matrix multiplications over this many goroutines")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = no deadline)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := cliConfig{
		data: *data, queryFile: *queryFile, queryText: *queryText,
		mode: *mode, engine: *engineName, limit: *limit, out: *out,
		prune: *doPrune, fingerprintK: *fingerprintK, workers: *workers,
	}
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dualsim:", err)
		os.Exit(1)
	}
}

// cliConfig carries the parsed flags.
type cliConfig struct {
	data, queryFile, queryText string
	mode, engine               string
	limit                      int
	out                        string
	prune                      bool
	fingerprintK               int
	workers                    int
}

func run(ctx context.Context, cfg cliConfig) error {
	src := cfg.queryText
	if src == "" {
		if cfg.queryFile == "" {
			return fmt.Errorf("provide -q or -query")
		}
		b, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	q, err := dualsim.ParseQuery(src)
	if err != nil {
		return err
	}
	if cfg.mode == "analyze" {
		return runAnalyze(q)
	}

	if cfg.data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(cfg.data)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))

	db, err := openSession(st, cfg)
	if err != nil {
		return err
	}
	defer db.Close()

	switch cfg.mode {
	case "simulate":
		return runSimulate(ctx, db, q)
	case "prune":
		return runPrune(ctx, db, q, cfg.out)
	case "evaluate":
		return runEvaluate(ctx, db, q, cfg.limit)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
}

// openSession maps the flags onto session options.
func openSession(st *dualsim.Store, cfg cliConfig) (*dualsim.DB, error) {
	opts := []dualsim.Option{dualsim.WithPruning(cfg.prune || cfg.mode == "prune")}
	switch cfg.engine {
	case "hash":
		opts = append(opts, dualsim.WithEngine(dualsim.HashJoin))
	case "index":
		opts = append(opts, dualsim.WithEngine(dualsim.IndexNL))
	default:
		return nil, fmt.Errorf("unknown engine %q (want hash or index)", cfg.engine)
	}
	if cfg.workers > 0 {
		opts = append(opts, dualsim.WithWorkers(cfg.workers))
	}
	if cfg.fingerprintK != 0 {
		if !cfg.prune && cfg.mode != "prune" {
			return nil, fmt.Errorf("-fingerprint pre-filters the pruning solve; combine it with -prune")
		}
		opts = append(opts, dualsim.WithFingerprint(cfg.fingerprintK))
	}
	return dualsim.Open(st, opts...)
}

func runAnalyze(q *dualsim.Query) error {
	fmt.Printf("query: %s\n", q)
	vars := dualsim.QueryVars(q)
	mand := dualsim.MandatoryVars(q)
	mandSet := make(map[string]bool, len(mand))
	for _, v := range mand {
		mandSet[v] = true
	}
	fmt.Printf("variables (%d):\n", len(vars))
	for _, v := range vars {
		role := "optional"
		if mandSet[v] {
			role = "mandatory"
		}
		fmt.Printf("  ?%-16s %s\n", v, role)
	}
	fmt.Printf("well-designed: %v\n", dualsim.IsWellDesigned(q))
	return nil
}

func runSimulate(ctx context.Context, db *dualsim.DB, q *dualsim.Query) error {
	start := time.Now()
	rel, err := db.DualSimulate(ctx, q)
	if err != nil {
		return err
	}
	stats := rel.Stats()
	fmt.Printf("largest dual simulation computed in %v (%d rounds, %d evaluations)\n",
		time.Since(start).Round(time.Microsecond), stats.Rounds, stats.Evaluations)
	for _, v := range dualsim.QueryVars(q) {
		fmt.Printf("  ?%-20s %d candidates\n", v, rel.CandidateCount(v))
	}
	if rel.Empty() {
		fmt.Println("the query is unsatisfiable (empty mandatory core)")
	}
	return nil
}

func runPrune(ctx context.Context, db *dualsim.DB, q *dualsim.Query, out string) error {
	start := time.Now()
	p, err := db.Prune(ctx, q)
	if err != nil {
		return err
	}
	fmt.Printf("pruning computed in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  triples before: %d\n", p.Total())
	fmt.Printf("  triples after:  %d\n", p.Kept())
	fmt.Printf("  pruned:         %.2f%%\n", 100*p.Ratio())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dualsim.DumpNTriples(f, p.Store()); err != nil {
			return err
		}
		fmt.Printf("  pruned store written to %s\n", out)
	}
	return nil
}

func runEvaluate(ctx context.Context, db *dualsim.DB, q *dualsim.Query, limit int) error {
	pq, err := db.PrepareQuery(q)
	if err != nil {
		return err
	}
	res, stats, err := pq.Exec(ctx)
	if err != nil {
		return err
	}
	for _, ss := range stats.Stages {
		if ss.Skipped {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-11s %8v  %d -> %d\n", ss.Name, ss.Duration.Round(time.Microsecond), ss.In, ss.Out)
	}
	fmt.Fprintf(os.Stderr, "%d results in %v (%s engine)\n",
		res.Len(), stats.Duration.Round(time.Microsecond), db.EngineName())
	rows := res.Rows
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	shown := &dualsim.Result{Vars: res.Vars, Rows: rows}
	fmt.Print(shown.Format(db.Store()))
	return nil
}
