// Command dualsim loads a graph database and processes a query with dual
// simulation:
//
//	dualsim -data db.nt -q 'SELECT * WHERE { ?d <directed> ?m }'        # evaluate
//	dualsim -data db.nt -query q.rq -prune                              # pruned evaluation
//	dualsim -data db.nt -q '…' -mode simulate                           # candidate sets
//	dualsim -data db.nt -q '…' -engine index -limit 20                  # results via index-NL engine
//	dualsim -data db.nt -q '…' -prune -fingerprint 2 -timeout 30s       # full pipeline, bounded
//	dualsim -data db.nt -q '…' -repeat 100                              # serve repeats via the plan cache
//	dualsim -data db.nt -query batch.rq -batch                          # batched concurrent execution
//	dualsim -data db.nt -q '…' -apply new.nt -del gone.nt               # live update: query, apply, re-query
//	dualsim -top -server http://localhost:8080 -interval 2s             # live workload statistics view
//
// Modes:
//
//	evaluate  (default) print the solution mappings
//	simulate  print per-variable dual simulation candidate counts
//	prune     print pruning statistics; with -out, dump the pruned store
//	analyze   print the query's structural analysis (no -data needed)
//
// -repeat n executes the query n times through the session's plan cache
// (capacity -plancache) and reports steady-state serving latency plus
// cache traffic. -batch treats the query input as several queries
// separated by lines containing only ";" and fans them across the
// session's batch worker pool.
//
// -apply and -del read N-Triples files as a live delta: the query runs
// once against the loaded store (epoch 0), the delta is applied —
// deletes before adds, atomically, publishing epoch 1 — and the same
// query runs again through the plan cache, whose epoch-scoped keys force
// a re-plan on the new snapshot. Both runs report the epoch served.
//
// The command is a thin client of the session API: it opens a DB over
// the loaded store, prepares the query once and executes the pipeline
// under a cancellable context — Ctrl-C (or -timeout) interrupts the
// solver and the join engines mid-flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dualsim"
	"dualsim/internal/buildinfo"
)

func main() {
	data := flag.String("data", "", "N-Triples database file (required)")
	queryFile := flag.String("query", "", "query file")
	queryText := flag.String("q", "", "inline query text")
	mode := flag.String("mode", "evaluate", "evaluate, simulate, prune or analyze")
	engineName := flag.String("engine", "volcano", "volcano, hash or index")
	limit := flag.Int("limit", 0, "print at most this many result rows (0 = all)")
	out := flag.String("out", "", "prune mode: write the pruned store here")
	doPrune := flag.Bool("prune", false, "evaluate through the pruning pipeline instead of directly")
	fingerprintK := flag.Int("fingerprint", 0, "with -prune: pre-filter via a k-bounded bisimulation fingerprint (0 = off)")
	workers := flag.Int("workers", 0, "parallelize bit-matrix multiplications over this many goroutines")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = no deadline)")
	repeat := flag.Int("repeat", 1, "evaluate mode: execute the query this many times through the plan cache")
	batch := flag.Bool("batch", false, "treat the query input as ';'-separated queries and execute them concurrently")
	planCache := flag.Int("plancache", 64, "LRU plan cache capacity for -repeat/-batch (0 disables)")
	batchWorkers := flag.Int("batchworkers", 0, "batch pool width (0 = GOMAXPROCS)")
	applyFile := flag.String("apply", "", "N-Triples file of triples to add as a live delta after the first run")
	delFile := flag.String("del", "", "N-Triples file of triples to delete as a live delta after the first run")
	compactAt := flag.Int("compactat", 0, "auto-compact the update overlay at this ledger size (0 = manual)")
	top := flag.Bool("top", false, "show a server's workload statistics table (GET /v1/debug/statements) instead of running a query")
	serverURL := flag.String("server", "http://localhost:8080", "with -top: daemon or router base URL")
	interval := flag.Duration("interval", 0, "with -top: refresh period (0 = print once and exit)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("dualsim"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *top {
		if err := runTop(ctx, *serverURL, *interval, *limit, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dualsim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := cliConfig{
		data: *data, queryFile: *queryFile, queryText: *queryText,
		mode: *mode, engine: *engineName, limit: *limit, out: *out,
		prune: *doPrune, fingerprintK: *fingerprintK, workers: *workers,
		repeat: *repeat, batch: *batch, planCache: *planCache,
		batchWorkers: *batchWorkers,
		applyFile:    *applyFile, delFile: *delFile, compactAt: *compactAt,
	}
	// Every failure — parse, exec, apply, I/O — exits non-zero with the
	// error on stderr; a clean run exits 0. TestMainExitCodes pins this
	// contract at the process level.
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dualsim:", err)
		os.Exit(1)
	}
}

// cliConfig carries the parsed flags.
type cliConfig struct {
	data, queryFile, queryText string
	mode, engine               string
	limit                      int
	out                        string
	prune                      bool
	fingerprintK               int
	workers                    int
	repeat                     int
	batch                      bool
	planCache                  int
	batchWorkers               int
	applyFile, delFile         string
	compactAt                  int
}

func run(ctx context.Context, cfg cliConfig) error {
	src := cfg.queryText
	if src == "" {
		if cfg.queryFile == "" {
			return fmt.Errorf("provide -q or -query")
		}
		b, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	// The batch and repeat paths hand raw text to the session (ExecBatch /
	// the plan cache parse it there); every other path parses here.
	repeatServe := cfg.mode == "evaluate" && cfg.repeat > 1
	liveUpdate := cfg.applyFile != "" || cfg.delFile != ""
	if liveUpdate && (cfg.batch || repeatServe || cfg.mode != "evaluate") {
		return fmt.Errorf("-apply/-del run the query-update-requery flow; they require the plain evaluate mode (no -batch, no -repeat)")
	}
	var q *dualsim.Query
	if !cfg.batch && !repeatServe {
		var err error
		q, err = dualsim.ParseQuery(src)
		if err != nil {
			return err
		}
	}
	if cfg.mode == "analyze" {
		if cfg.batch {
			return fmt.Errorf("-batch is an execution mode; analyze one query at a time")
		}
		return runAnalyze(q)
	}

	if cfg.data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(cfg.data)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))

	db, err := openSession(st, cfg)
	if err != nil {
		return err
	}
	defer db.Close()

	if cfg.batch {
		if cfg.mode != "evaluate" {
			return fmt.Errorf("-batch requires the evaluate mode")
		}
		return runBatch(ctx, db, src, cfg.limit)
	}
	switch cfg.mode {
	case "simulate":
		return runSimulate(ctx, db, q)
	case "prune":
		return runPrune(ctx, db, q, cfg.out)
	case "evaluate":
		if liveUpdate {
			return runLiveUpdate(ctx, db, src, cfg)
		}
		if repeatServe {
			return runRepeat(ctx, db, src, cfg.repeat, cfg.limit)
		}
		return runEvaluate(ctx, db, q, cfg.limit)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
}

// loadTriples reads an optional N-Triples file ("" yields nil).
func loadTriples(path string) ([]dualsim.Triple, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dualsim.ReadNTriples(f)
}

// runLiveUpdate is the read/write walkthrough: query at the loaded
// epoch, apply the -apply/-del delta, re-query — the epoch-scoped plan
// cache re-plans on the new snapshot.
func runLiveUpdate(ctx context.Context, db *dualsim.DB, src string, cfg cliConfig) error {
	adds, err := loadTriples(cfg.applyFile)
	if err != nil {
		return err
	}
	dels, err := loadTriples(cfg.delFile)
	if err != nil {
		return err
	}

	res, stats, err := db.Query(ctx, src)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "epoch %d: %d results in %v\n",
		stats.Epoch, res.Len(), stats.Duration.Round(time.Microsecond))
	printRows(res, db.Store(), cfg.limit)

	as, err := db.Apply(ctx, dualsim.Delta{Adds: adds, Dels: dels})
	if err != nil {
		return err
	}
	compacted := ""
	if as.Compacted {
		compacted = ", compacted"
	}
	fmt.Fprintf(os.Stderr, "applied delta in %v: epoch %d, +%d/−%d triples, overlay %d%s\n",
		as.Duration.Round(time.Microsecond), as.Epoch, as.Added, as.Deleted, as.OverlaySize, compacted)

	res, stats, err = db.Query(ctx, src)
	if err != nil {
		return err
	}
	if stats.CacheHit {
		return fmt.Errorf("post-update query was served a pre-update plan (epoch %d)", stats.Epoch)
	}
	fmt.Fprintf(os.Stderr, "epoch %d: %d results in %v (plan re-built for the new epoch)\n",
		stats.Epoch, res.Len(), stats.Duration.Round(time.Microsecond))
	printRows(res, db.Store(), cfg.limit)
	return nil
}

// openSession maps the flags onto session options.
func openSession(st *dualsim.Store, cfg cliConfig) (*dualsim.DB, error) {
	opts := []dualsim.Option{dualsim.WithPruning(cfg.prune || cfg.mode == "prune")}
	switch cfg.engine {
	case "volcano":
		opts = append(opts, dualsim.WithEngine(dualsim.Volcano))
	case "hash":
		opts = append(opts, dualsim.WithEngine(dualsim.HashJoin))
	case "index":
		opts = append(opts, dualsim.WithEngine(dualsim.IndexNL))
	default:
		return nil, fmt.Errorf("unknown engine %q (want volcano, hash or index)", cfg.engine)
	}
	if cfg.workers > 0 {
		opts = append(opts, dualsim.WithWorkers(cfg.workers))
	}
	if cfg.fingerprintK != 0 {
		if !cfg.prune && cfg.mode != "prune" {
			return nil, fmt.Errorf("-fingerprint pre-filters the pruning solve; combine it with -prune")
		}
		opts = append(opts, dualsim.WithFingerprint(cfg.fingerprintK))
	}
	if cfg.planCache > 0 {
		opts = append(opts, dualsim.WithPlanCache(cfg.planCache))
	}
	if cfg.batchWorkers > 0 {
		opts = append(opts, dualsim.WithBatchWorkers(cfg.batchWorkers))
	}
	if cfg.compactAt > 0 {
		opts = append(opts, dualsim.WithCompactionThreshold(cfg.compactAt))
	}
	return dualsim.Open(st, opts...)
}

// splitBatch splits a batch file into query texts at lines containing
// only ";" (surrounding whitespace allowed).
func splitBatch(src string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if s := strings.TrimSpace(cur.String()); s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == ";" {
			flush()
			continue
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	flush()
	return out
}

// runBatch executes the ';'-separated queries of src concurrently over
// the session's batch pool, collecting per-request outcomes.
func runBatch(ctx context.Context, db *dualsim.DB, src string, limit int) error {
	srcs := splitBatch(src)
	if len(srcs) == 0 {
		return fmt.Errorf("batch input contains no queries")
	}
	reqs := make([]dualsim.BatchRequest, len(srcs))
	for i, s := range srcs {
		reqs[i] = dualsim.BatchRequest{Src: s}
	}
	start := time.Now()
	out, err := db.ExecBatch(ctx, reqs)
	if err != nil {
		return err
	}
	failed := 0
	for i, r := range out {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "[%d] error: %v\n", i, r.Err)
			continue
		}
		hit := ""
		if r.Stats.CacheHit {
			hit = " (cached plan)"
		}
		fmt.Fprintf(os.Stderr, "[%d] %d results in %v%s\n",
			i, r.Result.Len(), r.Stats.Duration.Round(time.Microsecond), hit)
		printRows(r.Result, db.Store(), limit)
	}
	fmt.Fprintf(os.Stderr, "batch: %d queries (%d failed) in %v\n",
		len(out), failed, time.Since(start).Round(time.Microsecond))
	if failed > 0 {
		return fmt.Errorf("%d of %d batch queries failed", failed, len(out))
	}
	return nil
}

// runRepeat serves the query n times through the plan cache and reports
// steady-state latency plus cache traffic.
func runRepeat(ctx context.Context, db *dualsim.DB, src string, n, limit int) error {
	var last *dualsim.Result
	var total, best time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		res, _, err := db.Query(ctx, src)
		if err != nil {
			return err
		}
		d := time.Since(start)
		total += d
		if i == 0 || d < best {
			best = d
		}
		last = res
	}
	cs := db.CacheStats()
	fmt.Fprintf(os.Stderr, "%d executions in %v (avg %v, best %v); plan cache: %d hits, %d misses, %d plans built\n",
		n, total.Round(time.Microsecond), (total / time.Duration(n)).Round(time.Microsecond),
		best.Round(time.Microsecond), cs.Hits, cs.Misses, db.PlanBuilds())
	printRows(last, db.Store(), limit)
	return nil
}

// printRows renders up to limit result rows (0 = all).
func printRows(res *dualsim.Result, st *dualsim.Store, limit int) {
	rows := res.Rows
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	shown := &dualsim.Result{Vars: res.Vars, Rows: rows}
	fmt.Print(shown.Format(st))
}

func runAnalyze(q *dualsim.Query) error {
	fmt.Printf("query: %s\n", q)
	vars := dualsim.QueryVars(q)
	mand := dualsim.MandatoryVars(q)
	mandSet := make(map[string]bool, len(mand))
	for _, v := range mand {
		mandSet[v] = true
	}
	fmt.Printf("variables (%d):\n", len(vars))
	for _, v := range vars {
		role := "optional"
		if mandSet[v] {
			role = "mandatory"
		}
		fmt.Printf("  ?%-16s %s\n", v, role)
	}
	fmt.Printf("well-designed: %v\n", dualsim.IsWellDesigned(q))
	return nil
}

func runSimulate(ctx context.Context, db *dualsim.DB, q *dualsim.Query) error {
	start := time.Now()
	rel, err := db.DualSimulate(ctx, q)
	if err != nil {
		return err
	}
	stats := rel.Stats()
	fmt.Printf("largest dual simulation computed in %v (%d rounds, %d evaluations)\n",
		time.Since(start).Round(time.Microsecond), stats.Rounds, stats.Evaluations)
	for _, v := range dualsim.QueryVars(q) {
		fmt.Printf("  ?%-20s %d candidates\n", v, rel.CandidateCount(v))
	}
	if rel.Empty() {
		fmt.Println("the query is unsatisfiable (empty mandatory core)")
	}
	return nil
}

func runPrune(ctx context.Context, db *dualsim.DB, q *dualsim.Query, out string) error {
	start := time.Now()
	p, err := db.Prune(ctx, q)
	if err != nil {
		return err
	}
	fmt.Printf("pruning computed in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  triples before: %d\n", p.Total())
	fmt.Printf("  triples after:  %d\n", p.Kept())
	fmt.Printf("  pruned:         %.2f%%\n", 100*p.Ratio())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dualsim.DumpNTriples(f, p.Store()); err != nil {
			return err
		}
		fmt.Printf("  pruned store written to %s\n", out)
	}
	return nil
}

func runEvaluate(ctx context.Context, db *dualsim.DB, q *dualsim.Query, limit int) error {
	pq, err := db.PrepareQuery(q)
	if err != nil {
		return err
	}
	res, stats, err := pq.Exec(ctx)
	if err != nil {
		return err
	}
	for _, ss := range stats.Stages {
		if ss.Skipped {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-11s %8v  %d -> %d\n", ss.Name, ss.Duration.Round(time.Microsecond), ss.In, ss.Out)
	}
	fmt.Fprintf(os.Stderr, "%d results in %v (%s engine, epoch %d)\n",
		res.Len(), stats.Duration.Round(time.Microsecond), db.EngineName(), stats.Epoch)
	printRows(res, db.Store(), limit)
	return nil
}
