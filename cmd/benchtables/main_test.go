package main

import "testing"

// TestRunAllTablesTinyScale executes the full harness on a minimal
// dataset to guard the cmd wiring end to end.
func TestRunAllTablesTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("all", 1, 1, 7, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run("iters", 1, 1, 7, 1); err != nil {
		t.Fatal(err)
	}
}
