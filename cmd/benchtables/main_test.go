package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunAllTablesTinyScale executes the full harness on a minimal
// dataset to guard the cmd wiring end to end.
func TestRunAllTablesTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("all", 1, 1, 7, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run("iters", 1, 1, 7, 1, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunServingTableJSON guards the serving view (loopback HTTP load)
// and its slot in the JSON report CI archives.
func TestRunServingTableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run("serving", 1, 1, 7, 1, path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	rows, ok := rep.Tables["serving"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("report misses the serving table: %v", rep.Tables)
	}
	row, ok := rows[0].(map[string]any)
	if !ok {
		t.Fatalf("serving row shape: %T", rows[0])
	}
	// The stable lowerCamel keys the artifact promises.
	for _, key := range []string{"query", "p50", "p95", "cacheHitRate", "throughputRps", "shed"} {
		if _, ok := row[key]; !ok {
			t.Fatalf("serving row misses %q: %v", key, row)
		}
	}
}

// TestRunUpdatesTableJSON guards the live-update view and the JSON
// report CI archives.
func TestRunUpdatesTableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run("updates", 1, 1, 7, 1, path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if _, ok := rep.Tables["updates"]; !ok {
		t.Fatalf("report misses the updates table: %v", rep.Tables)
	}
}
