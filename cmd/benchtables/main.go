// Command benchtables regenerates the evaluation tables of the paper
// (Sect. 5) against the synthetic datasets:
//
//	benchtables -table 2          # SPARQLSIM vs. Ma et al. vs. HHK
//	benchtables -table 3          # pruning effectiveness
//	benchtables -table 4          # hash-join engine, full vs. pruned
//	benchtables -table 5          # index-nested-loop engine
//	benchtables -table iters      # SOI convergence shapes (§5.3)
//	benchtables -table all
//
// Scale knobs: -universities (LUBM-like), -kgscale (DBpedia-like), -seed,
// -repeats (timing repetitions, minimum is reported).
package main

import (
	"flag"
	"fmt"
	"os"

	"dualsim/internal/bench"
	"dualsim/internal/engine"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 2, 3, 4, 5, iters, orders, throughput, all")
	universities := flag.Int("universities", 3, "LUBM-like scale (number of universities)")
	kgScale := flag.Int("kgscale", 1, "DBpedia-like scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "timing repetitions (minimum reported)")
	flag.Parse()

	if err := run(*table, *universities, *kgScale, *seed, *repeats); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(table string, universities, kgScale int, seed int64, repeats int) error {
	fmt.Printf("generating datasets (universities=%d, kgscale=%d, seed=%d)…\n",
		universities, kgScale, seed)
	d, err := bench.Setup(universities, kgScale, seed)
	if err != nil {
		return err
	}
	bench.DatasetSummary(os.Stdout, d)
	fmt.Println()

	want := func(t string) bool { return table == "all" || table == t }

	if want("2") {
		fmt.Println("Table 2: dual simulation runtimes, OPTIONAL-stripped B queries (seconds)")
		rows, err := bench.Table2(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderTable2(os.Stdout, rows)
		fmt.Println()
	}
	if want("3") {
		fmt.Println("Table 3: result sizes, required triples, SPARQLSIM runtime, triples after pruning")
		rows, err := bench.Table3(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderTable3(os.Stdout, rows)
		fmt.Println()
	}
	if want("4") {
		fmt.Println("Table 4: hash-join engine (in-memory-store stand-in), full vs. pruned (seconds)")
		rows, err := bench.EngineComparison(d, engine.NewHashJoin(), repeats)
		if err != nil {
			return err
		}
		bench.RenderEngineTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("5") {
		fmt.Println("Table 5: index-nested-loop engine (relational-store stand-in), full vs. pruned (seconds)")
		rows, err := bench.EngineComparison(d, engine.NewIndexNL(), repeats)
		if err != nil {
			return err
		}
		bench.RenderEngineTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("iters") {
		fmt.Println("SOI convergence shapes (§5.3): rounds per query")
		rows, err := bench.IterationShapes(d)
		if err != nil {
			return err
		}
		bench.RenderIterations(os.Stdout, rows)
		fmt.Println()
	}
	if want("throughput") {
		fmt.Println("Throughput: cold vs. cached serving path (plan cache + pooled execution, seconds)")
		rows, err := bench.Throughput(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderThroughput(os.Stdout, rows)
		fmt.Println()
	}
	if want("orders") {
		fmt.Println("Order-space search (§5.3 brute-force analysis), 40 random orders")
		rows, err := bench.OrderSearch(d, 40, seed)
		if err != nil {
			return err
		}
		bench.RenderOrderSearch(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}
