// Command benchtables regenerates the evaluation tables of the paper
// (Sect. 5) against the synthetic datasets:
//
//	benchtables -table 2          # SPARQLSIM vs. Ma et al. vs. HHK
//	benchtables -table 3          # pruning effectiveness
//	benchtables -table 4          # hash-join engine, full vs. pruned
//	benchtables -table 5          # index-nested-loop engine
//	benchtables -table iters      # SOI convergence shapes (§5.3)
//	benchtables -table updates    # live-update layer (apply / re-query / compact)
//	benchtables -table serving    # loopback HTTP serving (p50/p95, hit rate, shed)
//	benchtables -table persist    # durability layer (snapshot MB/s, WAL replay, cold boot)
//	benchtables -table cluster    # scale-out (router fan-out p50/p95, replica catch-up)
//	benchtables -table planner    # cost-based planner ablations + streamed first-row p50
//	benchtables -table trace      # tracing overhead (untraced vs ?trace=1 p50/p95)
//	benchtables -table stats      # workload statistics overhead (accounting off vs on, scrape cost)
//	benchtables -table all
//
// Scale knobs: -universities (LUBM-like), -kgscale (DBpedia-like), -seed,
// -repeats (timing repetitions, minimum is reported). -json FILE
// additionally dumps every computed table as a JSON report (durations in
// nanoseconds) — the machine-readable artifact CI archives per PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dualsim/internal/bench"
	"dualsim/internal/engine"
)

func main() {
	table := flag.String("table", "all", "comma-separated tables to regenerate: 2, 3, 4, 5, iters, orders, throughput, updates, serving, persist, cluster, planner, trace, stats, all")
	universities := flag.Int("universities", 3, "LUBM-like scale (number of universities)")
	kgScale := flag.Int("kgscale", 1, "DBpedia-like scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "timing repetitions (minimum reported)")
	jsonPath := flag.String("json", "", "write the computed tables as a JSON report to this file")
	flag.Parse()

	if err := run(*table, *universities, *kgScale, *seed, *repeats, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

// report is the -json artifact: configuration plus every computed table,
// keyed by table name.
//
//dualsim:wire
type report struct {
	Universities int            `json:"universities"`
	KGScale      int            `json:"kgscale"`
	Seed         int64          `json:"seed"`
	Repeats      int            `json:"repeats"`
	Tables       map[string]any `json:"tables"`
}

func run(table string, universities, kgScale int, seed int64, repeats int, jsonPath string) error {
	// Validate the table list before paying for dataset generation: a
	// typo must fail loudly, not silently produce a partial report.
	known := map[string]bool{
		"all": true, "2": true, "3": true, "4": true, "5": true,
		"iters": true, "orders": true, "throughput": true, "updates": true,
		"serving": true, "persist": true, "cluster": true, "planner": true,
		"trace": true, "stats": true,
	}
	wanted := make(map[string]bool)
	for _, t := range strings.Split(table, ",") {
		name := strings.TrimSpace(t)
		if !known[name] {
			return fmt.Errorf("unknown table %q (want 2, 3, 4, 5, iters, orders, throughput, updates, serving, persist, cluster, planner, trace, stats or all)", name)
		}
		wanted[name] = true
	}
	want := func(t string) bool { return wanted["all"] || wanted[t] }

	fmt.Printf("generating datasets (universities=%d, kgscale=%d, seed=%d)…\n",
		universities, kgScale, seed)
	d, err := bench.Setup(universities, kgScale, seed)
	if err != nil {
		return err
	}
	bench.DatasetSummary(os.Stdout, d)
	fmt.Println()

	rep := report{
		Universities: universities, KGScale: kgScale, Seed: seed, Repeats: repeats,
		Tables: make(map[string]any),
	}

	if want("2") {
		fmt.Println("Table 2: dual simulation runtimes, OPTIONAL-stripped B queries (seconds)")
		rows, err := bench.Table2(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderTable2(os.Stdout, rows)
		fmt.Println()
		rep.Tables["table2"] = rows
	}
	if want("3") {
		fmt.Println("Table 3: result sizes, required triples, SPARQLSIM runtime, triples after pruning")
		rows, err := bench.Table3(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderTable3(os.Stdout, rows)
		fmt.Println()
		rep.Tables["table3"] = rows
	}
	if want("4") {
		fmt.Println("Table 4: hash-join engine (in-memory-store stand-in), full vs. pruned (seconds)")
		rows, err := bench.EngineComparison(d, engine.NewHashJoin(), repeats)
		if err != nil {
			return err
		}
		bench.RenderEngineTable(os.Stdout, rows)
		fmt.Println()
		rep.Tables["table4"] = rows
	}
	if want("5") {
		fmt.Println("Table 5: index-nested-loop engine (relational-store stand-in), full vs. pruned (seconds)")
		rows, err := bench.EngineComparison(d, engine.NewIndexNL(), repeats)
		if err != nil {
			return err
		}
		bench.RenderEngineTable(os.Stdout, rows)
		fmt.Println()
		rep.Tables["table5"] = rows
	}
	if want("iters") {
		fmt.Println("SOI convergence shapes (§5.3): rounds per query")
		rows, err := bench.IterationShapes(d)
		if err != nil {
			return err
		}
		bench.RenderIterations(os.Stdout, rows)
		fmt.Println()
		rep.Tables["iters"] = rows
	}
	if want("throughput") {
		fmt.Println("Throughput: cold vs. cached serving path (plan cache + pooled execution, seconds)")
		rows, err := bench.Throughput(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderThroughput(os.Stdout, rows)
		fmt.Println()
		rep.Tables["throughput"] = rows
	}
	if want("updates") {
		fmt.Println("Updates: live-update layer (apply latency, epoch-miss re-query, compaction, seconds)")
		rows, err := bench.Updates(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderUpdates(os.Stdout, rows)
		fmt.Println()
		rep.Tables["updates"] = rows
	}
	if want("serving") {
		fmt.Println("Serving: loopback HTTP load (concurrent clients + interleaved applies, seconds)")
		rows, err := bench.Serving(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderServing(os.Stdout, rows)
		fmt.Println()
		rep.Tables["serving"] = rows
	}
	if want("trace") {
		fmt.Println("Trace: tracing overhead on the serving path (untraced vs ?trace=1 p50/p95)")
		rows, err := bench.Trace(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderTrace(os.Stdout, rows)
		fmt.Println()
		rep.Tables["trace"] = rows
	}
	if want("stats") {
		fmt.Println("Stats: workload statistics overhead on the serving path (accounting off vs on p50/p95)")
		rows, err := bench.Stats(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderStats(os.Stdout, rows)
		fmt.Println()
		rep.Tables["stats"] = rows
	}
	if want("persist") {
		fmt.Println("Persist: durability layer (snapshot save/load, cold boot vs. re-parse, WAL rates)")
		rows, err := bench.Persist(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderPersist(os.Stdout, rows)
		fmt.Println()
		rep.Tables["persist"] = rows
	}
	if want("cluster") {
		fmt.Println("Cluster: scatter-gather router over 2 shards + replica WAL catch-up")
		rows, err := bench.Cluster(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderCluster(os.Stdout, rows)
		fmt.Println()
		rep.Tables["cluster"] = rows
	}
	if want("planner") {
		fmt.Println("Planner: cost-based ablations (reorder, pushdown) + streamed first-row p50 (seconds)")
		rows, err := bench.Planner(d, repeats)
		if err != nil {
			return err
		}
		bench.RenderPlanner(os.Stdout, rows)
		fmt.Println()
		rep.Tables["planner"] = rows
	}
	if want("orders") {
		fmt.Println("Order-space search (§5.3 brute-force analysis), 40 random orders")
		rows, err := bench.OrderSearch(d, 40, seed)
		if err != nil {
			return err
		}
		bench.RenderOrderSearch(os.Stdout, rows)
		fmt.Println()
		rep.Tables["orders"] = rows
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("JSON report written to %s\n", jsonPath)
	}
	return nil
}
