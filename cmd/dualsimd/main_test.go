package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/queries"
)

func fixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1a.nt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	if err := dualsim.DumpNTriples(f, st); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon runs the daemon on a free loopback port and returns a
// client plus a shutdown func that asserts a clean drain.
func startDaemon(t *testing.T, cfg daemonConfig) (*client.Client, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 5 * time.Second
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, devnull, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon died before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		cancel() // run treats ctx cancellation like SIGTERM: drain + exit
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
		devnull.Close()
	}
}

const queryX1 = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`

func TestDaemonServesAndDrains(t *testing.T) {
	c, shutdown := startDaemon(t, daemonConfig{
		data: fixture(t), engine: "hash", prune: true, planCache: 16, queueDepth: 8,
	})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	out, err := c.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Epoch != 0 {
		t.Fatalf("query: %d rows, epoch %d", len(out.Rows), out.Epoch)
	}

	// A live delta over the wire, then the streamed read of the result.
	if _, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.QueryStream(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if n != 3 || st.Epoch() != 1 {
		t.Fatalf("streamed post-apply: %d rows, epoch %d", n, st.Epoch())
	}

	shutdown()
}

func TestDaemonConfigErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cases := []daemonConfig{
		{},                             // missing -data
		{data: "/no/such.nt"},          // unreadable store
		{data: "fixture", engine: "x"}, // bad engine (data set below)
		{data: "fixture", engine: "hash", fingerprintK: 2, prune: false}, // fingerprint without prune
		{data: "fixture", engine: "hash", queueDepth: -1},                // negative queue depth fails loudly
	}
	fix := fixture(t)
	for i := range cases {
		if cases[i].data == "fixture" {
			cases[i].data = fix
		}
		if err := run(context.Background(), cases[i], devnull, nil); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg := parseFlags([]string{"-data", "x.nt", "-maxinflight", "4"}, flag.ContinueOnError)
	if cfg.data != "x.nt" || cfg.maxInFlight != 4 || !cfg.prune || cfg.planCache != 128 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if cfg.drainTimeout != 10*time.Second {
		t.Fatalf("drain default: %v", cfg.drainTimeout)
	}
}
