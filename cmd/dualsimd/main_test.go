package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/queries"
)

// TestMain doubles the test binary as the dualsimd daemon when
// re-executed with DUALSIMD_MAIN=1 — the hook the crash-recovery test
// uses to run (and SIGKILL) a real daemon process.
func TestMain(m *testing.M) {
	if os.Getenv("DUALSIMD_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func fixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig1a.nt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	if err := dualsim.DumpNTriples(f, st); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon runs the daemon on a free loopback port and returns a
// client plus a shutdown func that asserts a clean drain.
func startDaemon(t *testing.T, cfg daemonConfig) (*client.Client, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 5 * time.Second
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, devnull, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon died before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		cancel() // run treats ctx cancellation like SIGTERM: drain + exit
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
		devnull.Close()
	}
}

const queryX1 = `SELECT * WHERE { ?d <directed> ?m . ?d <worked_with> ?c . }`

func TestDaemonServesAndDrains(t *testing.T) {
	c, shutdown := startDaemon(t, daemonConfig{
		store: fixture(t), engine: "hash", prune: true, planCache: 16, queueDepth: 8,
	})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	out, err := c.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Epoch != 0 {
		t.Fatalf("query: %d rows, epoch %d", len(out.Rows), out.Epoch)
	}

	// A live delta over the wire, then the streamed read of the result.
	if _, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.QueryStream(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if n != 3 || st.Epoch() != 1 {
		t.Fatalf("streamed post-apply: %d rows, epoch %d", n, st.Epoch())
	}

	shutdown()
}

// TestDaemonWarmRestart is the acceptance path: a durable daemon is
// drained (writing its final checkpoint) and restarted against the same
// -data dir with NO -store input — it must serve identical query
// results at the same epoch.
func TestDaemonWarmRestart(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()

	c, shutdown := startDaemon(t, daemonConfig{
		store: fixture(t), data: dataDir, engine: "hash", prune: true,
		planCache: 16, queueDepth: 8, checkpointEvery: 1024,
	})
	if _, err := c.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantEpoch := len(out.Rows), out.Epoch
	if wantEpoch != 1 {
		t.Fatalf("pre-restart epoch %d, want 1", wantEpoch)
	}
	shutdown() // drains and writes the final checkpoint

	// Second boot: no -store. The dir is the database now.
	c2, shutdown2 := startDaemon(t, daemonConfig{
		data: dataDir, engine: "hash", prune: true, planCache: 16, queueDepth: 8,
	})
	defer shutdown2()
	snap, err := c2.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != wantEpoch {
		t.Fatalf("epoch after warm restart: %d, want %d", snap.Epoch, wantEpoch)
	}
	out2, err := c2.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Rows) != wantRows || out2.Epoch != wantEpoch {
		t.Fatalf("post-restart answers: %d rows at epoch %d, want %d at %d",
			len(out2.Rows), out2.Epoch, wantRows, wantEpoch)
	}
	// The restarted daemon is still live and durable: apply + checkpoint.
	ar, err := c2.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("post:s", "post:p", "post:o"),
	}})
	if err != nil || ar.Stats.Epoch != wantEpoch+1 {
		t.Fatalf("post-restart apply: %+v, %v", ar, err)
	}
	ck, err := c2.Checkpoint(ctx)
	if err != nil || ck.Stats.Epoch != wantEpoch+1 {
		t.Fatalf("post-restart checkpoint: %+v, %v", ck, err)
	}
}

// spawnDaemon re-executes the test binary as a real dualsimd process
// (see TestMain) and scrapes the bound address off its stderr. The
// returned process is NOT drained — crash tests kill it.
func spawnDaemon(t *testing.T, args ...string) (*client.Client, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "DUALSIMD_MAIN=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "dualsimd: listening on http://"); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon process never reported its address (scan err: %v)", sc.Err())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stderr)
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	return c, cmd
}

// TestDaemonCrashRecovery SIGKILLs a durable daemon process mid-apply
// and asserts the warm restart replays the WAL to a consistent epoch:
// every acknowledged apply survives, the store is intact (no torn
// triples), and the epoch sequence continues where the log ended.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash test")
	}
	dataDir := t.TempDir()
	c, cmd := spawnDaemon(t,
		"-store", fixture(t), "-data", dataDir,
		"-plancache", "8", "-checkpointevery", "0") // keep everything in the WAL: recovery must replay, not cheat
	ctx := context.Background()

	// Apply continuously; fire the SIGKILL asynchronously after a few
	// acknowledgements so the kill lands while applies are in flight.
	const killAfter = 25
	acked := 0
	var lastEpoch uint64
	for i := 0; ; i++ {
		if i == killAfter {
			go cmd.Process.Kill() // async: the next applies race the kill
		}
		resp, err := c.Apply(ctx, []client.Triple{
			{S: fmt.Sprintf("crash:s%d", i), P: "crash:edge", O: fmt.Sprintf("crash:o%d", i)},
		}, nil)
		if err != nil {
			break // the daemon is gone; everything acked so far must survive
		}
		acked++
		lastEpoch = resp.Stats.Epoch
		if i > killAfter+10000 {
			t.Fatal("daemon refused to die")
		}
	}
	cmd.Wait()
	if acked < killAfter {
		t.Fatalf("only %d applies acknowledged before the crash", acked)
	}
	if lastEpoch != uint64(acked) {
		t.Fatalf("last acked epoch %d after %d applies", lastEpoch, acked)
	}

	// Warm restart in-process and audit the recovered state.
	db, err := dualsim.OpenDir(dataDir)
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer db.Close()
	if db.Epoch() < lastEpoch {
		t.Fatalf("recovered epoch %d lost acknowledged epoch %d", db.Epoch(), lastEpoch)
	}
	st := db.Store()
	p, ok := st.PredIDOf("crash:edge")
	if !ok {
		t.Fatal("recovered store lost the crash:edge predicate")
	}
	for i := 0; i < acked; i++ {
		s, okS := st.TermID(dualsim.IRI(fmt.Sprintf("crash:s%d", i)))
		o, okO := st.TermID(dualsim.IRI(fmt.Sprintf("crash:o%d", i)))
		if !okS || !okO || !st.HasTriple(s, p, o) {
			t.Fatalf("acknowledged triple %d missing after recovery (epoch %d, acked %d)", i, db.Epoch(), acked)
		}
	}
	// No torn triples: every crash:edge triple is one of ours, fully
	// formed (the kill may legitimately have persisted one unacked
	// apply from the in-flight window — durability is about acks).
	if n := st.PredCount(p); n < acked || n > acked+1 {
		t.Fatalf("recovered %d crash:edge triples, want %d or %d", n, acked, acked+1)
	}
	// And the original store answers queries as before.
	res, stats, err := db.Exec(ctx, queryX1)
	if err != nil || res.Len() != 2 {
		t.Fatalf("recovered query: %v rows, %v", res.Len(), err)
	}
	if stats.Epoch != db.Epoch() {
		t.Fatalf("exec epoch %d vs db epoch %d", stats.Epoch, db.Epoch())
	}
}

// TestDaemonShard boots one daemon per shard of a 2-way partitioning
// and checks the split: disjoint triple counts covering the input, and
// each predicate answered by exactly its owning shard.
func TestDaemonShard(t *testing.T) {
	fix := fixture(t)
	base := daemonConfig{store: fix, engine: "hash", prune: true, planCache: 16, queueDepth: 8}
	ctx := context.Background()

	cfg0, cfg1 := base, base
	cfg0.shard, cfg1.shard = "0/2", "1/2"
	c0, shutdown0 := startDaemon(t, cfg0)
	defer shutdown0()
	c1, shutdown1 := startDaemon(t, cfg1)
	defer shutdown1()

	s0, err := c0.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c1.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	full := len(queries.Fig1aTriples())
	if s0.Triples+s1.Triples != full || s0.Triples == 0 || s1.Triples == 0 {
		t.Fatalf("shards hold %d + %d triples, input has %d", s0.Triples, s1.Triples, full)
	}

	// Every predicate lives wholly on its ShardOf shard.
	shardClients := []*client.Client{c0, c1}
	for _, pred := range []string{"directed", "worked_with", "genre", "population"} {
		owner := cluster.ShardOf(pred, 2)
		src := fmt.Sprintf(`SELECT * WHERE { ?s <%s> ?o . }`, pred)
		for i, c := range shardClients {
			out, err := c.Query(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			if (len(out.Rows) > 0) != (i == owner) {
				t.Errorf("predicate %q: shard %d answered %d rows, owner is %d", pred, i, len(out.Rows), owner)
			}
		}
	}
}

// TestDaemonFollower boots a durable primary and a -follow replica:
// the replica must report not-ready until it catches up, serve the
// primary's data read-only, and track live applies.
func TestDaemonFollower(t *testing.T) {
	ctx := context.Background()
	pc, shutdownPrimary := startDaemon(t, daemonConfig{
		store: fixture(t), data: t.TempDir(), engine: "hash", prune: true,
		planCache: 16, queueDepth: 8, checkpointEvery: 1024,
	})
	defer shutdownPrimary()
	if _, err := pc.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "directed", "Die_Hard"),
	}}); err != nil {
		t.Fatal(err)
	}
	// The replica needs the primary's URL; recover it from the client.
	purl := pc.BaseURL()

	rc, shutdownReplica := startDaemon(t, daemonConfig{
		follow: purl, engine: "hash", prune: true, planCache: 16, queueDepth: 8,
	})
	defer shutdownReplica()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rc.Ready(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	out, err := rc.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pc.Query(ctx, queryX1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != len(want.Rows) || out.Epoch != want.Epoch {
		t.Fatalf("replica: %d rows at epoch %d; primary: %d at %d",
			len(out.Rows), out.Epoch, len(want.Rows), want.Epoch)
	}

	// A replica is read-only: mutations answer 403.
	if _, err := rc.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("x", "y", "z"),
	}}); err == nil {
		t.Fatal("replica accepted a write")
	}

	// Live catch-up of a post-bootstrap apply.
	if _, err := pc.ApplyDelta(ctx, dualsim.Delta{Adds: []dualsim.Triple{
		dualsim.T("J._McTiernan", "worked_with", "S._de_Souza"),
	}}); err != nil {
		t.Fatal(err)
	}
	for {
		out, err := rc.Query(ctx, queryX1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Epoch == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at epoch %d", out.Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonConfigErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	emptyDir := t.TempDir()
	cases := []daemonConfig{
		{},                              // missing -store and -data
		{store: "/no/such.nt"},          // unreadable store
		{store: "fixture", engine: "x"}, // bad engine (data set below)
		{store: "fixture", engine: "hash", fingerprintK: 2, prune: false}, // fingerprint without prune
		{store: "fixture", engine: "hash", queueDepth: -1},                // negative queue depth fails loudly
		{store: "fixture", engine: "hash", checkpointEvery: -1},           // negative checkpoint interval fails loudly
		{data: emptyDir, engine: "hash"},                                  // -data without state needs -store
		{store: "fixture", engine: "hash", shard: "2/2"},                  // shard index out of range
		{store: "fixture", engine: "hash", shard: "nope"},                 // malformed shard spec
		{store: "fixture", engine: "hash", follow: "http://x"},            // -follow conflicts with -store
		{engine: "hash", maxLag: 3},                                       // -maxlag requires -follow
	}
	fix := fixture(t)
	for i := range cases {
		if cases[i].store == "fixture" {
			cases[i].store = fix
		}
		if err := run(context.Background(), cases[i], devnull, nil); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg := parseFlags([]string{"-store", "x.nt", "-maxinflight", "4"}, flag.ContinueOnError)
	if cfg.store != "x.nt" || cfg.maxInFlight != 4 || !cfg.prune || cfg.planCache != 128 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if cfg.drainTimeout != 10*time.Second {
		t.Fatalf("drain default: %v", cfg.drainTimeout)
	}
	if cfg.checkpointEvery != 1024 {
		t.Fatalf("checkpointevery default: %d", cfg.checkpointEvery)
	}
	cfg = parseFlags([]string{"-data", "/var/lib/dualsim"}, flag.ContinueOnError)
	if cfg.data != "/var/lib/dualsim" || cfg.store != "" {
		t.Fatalf("warm-restart config: %+v", cfg)
	}
}
