// Command dualsimd serves a graph database over HTTP — the network
// front end of the dual-simulation engine:
//
//	dualsimd -store db.nt -addr :8321
//	dualsimd -store db.nt -data /var/lib/dualsim     # durable serving
//	dualsimd -data /var/lib/dualsim                  # warm restart
//	dualsimd -store db.nt -shard 0/2                 # serve one cluster shard
//	dualsimd -follow http://primary:8321 -maxlag 2   # WAL-streaming read replica
//	dualsimd -store db.nt -addr 127.0.0.1:0 -plancache 256 -maxinflight 16
//	dualsimd -store db.nt -prune=false -engine index
//	dualsimd -store db.nt -compactat 4096 -fingerprint 2
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/query        query via the plan cache; ?stream=1 for NDJSON rows
//	POST /v1/batch        concurrent query batch
//	POST /v1/apply        live delta (dels before adds, atomic, epoch++)
//	POST /v1/compact      consolidate the update overlay
//	POST /v1/checkpoint   roll the WAL into a fresh on-disk snapshot
//	GET  /v1/snapshot     epoch + store shape
//	GET  /v1/export       predicate slices (the router's gather path)
//	GET  /v1/wal          WAL tail from an epoch (replica streaming; durable only)
//	GET  /v1/wal/snapshot binary snapshot (replica bootstrap)
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 while draining, bootstrapping or lagging)
//	GET  /metrics         Prometheus-style metrics
//	GET  /v1/debug/statements  per-statement workload statistics (?reset=1)
//
// The daemon is a thin shell over the session layer: one dualsim.DB
// with a plan cache serves every request; admission control
// (-maxinflight, -queuedepth) sheds overload with 429 + Retry-After.
//
// With -data the database is durable: every acknowledged apply is
// WAL-logged (fsync'd) into the data dir, -checkpointevery rolls the
// log into binary snapshots, and a restart against the same dir warm
// starts — latest snapshot + WAL tail, same epoch sequence, no
// re-parsing of the original N-Triples input (-store is then only
// needed for the very first boot and is ignored once the dir holds
// state).
//
// With -shard i/N the daemon serves shard i of an N-way predicate-hash
// partitioning: the -store input is filtered to the triples whose
// predicates place on this shard (see internal/cluster), and
// cmd/dualsimrouter fans queries over the N daemons. A durable shard
// persists its filtered state, so a warm restart needs no -shard.
//
// With -follow the daemon is a read replica: it bootstraps a session
// from the primary's streamed snapshot, tails GET /v1/wal, replays
// every record, and serves reads only (mutations answer 403). /readyz
// stays 503 until the first bootstrap completes and whenever the
// replica lags the primary by more than -maxlag epochs.
//
// On SIGINT/SIGTERM it drains: /readyz flips to 503 so load balancers
// stop routing here (liveness stays green), in-flight queries finish
// (bounded by -draintimeout), a final checkpoint is written when
// durable, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualsim"
	"dualsim/internal/buildinfo"
	"dualsim/internal/cluster"
	"dualsim/internal/debugserver"
	"dualsim/internal/httplog"
	"dualsim/internal/metrics"
	"dualsim/internal/persist"
	"dualsim/internal/server"
)

func main() {
	cfg := parseFlags(os.Args[1:], flag.ExitOnError)
	if cfg.version {
		fmt.Println(buildinfo.String("dualsimd"))
		return
	}
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dualsimd:", err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	addr            string
	store           string
	data            string
	engine          string
	prune           bool
	fingerprintK    int
	workers         int
	planCache       int
	batchWorkers    int
	compactAt       int
	checkpointEvery int
	maxInFlight     int
	queueDepth      int
	timeout         time.Duration
	drainTimeout    time.Duration
	maxQueryMem     int64
	stmtStats       int
	shard           string
	follow          string
	maxLag          uint64
	debugAddr       string
	accessLog       string
	slowLog         int
	slowThreshold   time.Duration
	version         bool
}

func parseFlags(args []string, onError flag.ErrorHandling) daemonConfig {
	fs := flag.NewFlagSet("dualsimd", onError)
	cfg := daemonConfig{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free one)")
	fs.StringVar(&cfg.store, "store", "", "N-Triples database file (required unless -data holds state)")
	fs.StringVar(&cfg.data, "data", "", "durable data dir: snapshot + WAL; warm restart when it holds state")
	fs.StringVar(&cfg.engine, "engine", "volcano", "evaluation engine: volcano, hash or index")
	fs.BoolVar(&cfg.prune, "prune", true, "evaluate through the dual-simulation pruning pipeline")
	fs.IntVar(&cfg.fingerprintK, "fingerprint", 0, "pre-filter via a k-bounded bisimulation fingerprint (0 = off)")
	fs.IntVar(&cfg.workers, "workers", 0, "parallelize bit-matrix multiplications over this many goroutines")
	fs.IntVar(&cfg.planCache, "plancache", 128, "LRU plan cache capacity (0 disables)")
	fs.IntVar(&cfg.batchWorkers, "batchworkers", 0, "batch pool width (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.compactAt, "compactat", 0, "auto-compact the update overlay at this ledger size (0 = manual)")
	fs.IntVar(&cfg.checkpointEvery, "checkpointevery", 1024, "with -data, checkpoint every n WAL records (0 = only on compact/demand)")
	fs.IntVar(&cfg.maxInFlight, "maxinflight", 0, "concurrently executing requests (0 = 2×GOMAXPROCS)")
	fs.IntVar(&cfg.queueDepth, "queuedepth", 64, "requests waiting for a slot before shedding with 429")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-request execution bound (0 = none; requests may set timeoutMs)")
	fs.DurationVar(&cfg.drainTimeout, "draintimeout", 10*time.Second, "grace period for in-flight queries on shutdown")
	fs.Int64Var(&cfg.maxQueryMem, "maxquerymem", 0, "per-query memory budget in bytes for executor buffering (0 = unbudgeted; exceeded → 413)")
	fs.IntVar(&cfg.stmtStats, "stmtstats", -1, "workload statistics capacity at GET /v1/debug/statements (-1 = default 256, 0 disables)")
	fs.StringVar(&cfg.shard, "shard", "", "serve shard i of an N-way predicate partitioning (\"i/N\"; filters -store)")
	fs.StringVar(&cfg.follow, "follow", "", "run as a read replica of the primary dualsimd at this URL")
	fs.Uint64Var(&cfg.maxLag, "maxlag", 0, "with -follow, epochs of staleness before /readyz flips to 503")
	fs.StringVar(&cfg.debugAddr, "debugaddr", "", "serve pprof + /v1/debug/slow on this extra address (off the serving listener)")
	fs.StringVar(&cfg.accessLog, "accesslog", "", "write a JSON access log to this file (\"-\" for stdout)")
	fs.IntVar(&cfg.slowLog, "slowlog", 0, "keep this many slow queries at GET /v1/debug/slow (0 disables)")
	fs.DurationVar(&cfg.slowThreshold, "slowthreshold", 0, "with -slowlog, only record queries at least this slow (0 = all)")
	fs.BoolVar(&cfg.version, "version", false, "print build version and exit")
	fs.Parse(args) // ExitOnError in production; tests pass ContinueOnError configs directly
	return cfg
}

// run opens the session (cold from -store, or warm from -data), serves
// until ctx is cancelled or a termination signal arrives, then drains
// and exits. When ready is non-nil, the bound address is sent on it once
// the listener is up (the hook the tests and -addr :0 users rely on).
func run(ctx context.Context, cfg daemonConfig, logw *os.File, ready chan<- string) (err error) {
	if cfg.follow != "" {
		if cfg.store != "" || cfg.data != "" || cfg.shard != "" {
			return fmt.Errorf("-follow runs a read replica fed by the primary's WAL; it conflicts with -store, -data and -shard")
		}
		return runFollower(ctx, cfg, logw, ready)
	}
	if cfg.maxLag != 0 {
		return fmt.Errorf("-maxlag is a replica staleness bound; it requires -follow")
	}
	db, err := openSession(cfg, logw)
	if err != nil {
		return err
	}
	// A durable session's Close releases the WAL and the data-dir lock;
	// a failure there must reach the exit status, not vanish.
	defer func() { err = errors.Join(err, db.Close()) }()

	srv, err := server.New(db, serverOptions(cfg)...)
	if err != nil {
		return err
	}
	return serveAndDrain(ctx, cfg, srv, logw, ready, func() error {
		// A final checkpoint after the last request finished: the next
		// boot loads the snapshot directly with nothing to replay.
		if !db.Durable() {
			return nil
		}
		cs, err := db.Checkpoint(context.Background())
		if err != nil {
			return fmt.Errorf("drain checkpoint: %w", err)
		}
		fmt.Fprintf(logw, "dualsimd: checkpointed epoch %d (%d bytes)\n", cs.Epoch, cs.SnapshotBytes)
		return nil
	})
}

// runFollower serves a WAL-streaming read replica: an empty placeholder
// session goes live immediately (reporting not-ready), the replication
// loop bootstraps from the primary and hot-swaps sessions in as it
// catches up. No final checkpoint on shutdown — the replica's
// durability IS the primary's WAL.
func runFollower(ctx context.Context, cfg daemonConfig, logw *os.File, ready chan<- string) (err error) {
	sessOpts, err := sessionOptions(cfg)
	if err != nil {
		return err
	}
	empty, err := dualsim.FromTriples(nil)
	if err != nil {
		return err
	}
	placeholder, err := dualsim.Open(empty, sessOpts...)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, placeholder.Close()) }()

	// The follower and the server need each other (readiness hook one
	// way, session hot-swap the other); the closure breaks the cycle.
	var f *cluster.Follower
	reg := metrics.NewRegistry()
	srvOpts := append(serverOptions(cfg),
		server.WithRegistry(reg),
		server.WithReadOnly(),
		server.WithReadiness(func() error {
			if f == nil {
				return errors.New("replica starting")
			}
			return f.Ready()
		}),
	)
	srv, err := server.New(placeholder, srvOpts...)
	if err != nil {
		return err
	}
	f, err = cluster.Follow(cfg.follow,
		cluster.WithMaxLag(cfg.maxLag),
		cluster.WithSessionOptions(sessOpts...),
		cluster.WithOnSwap(srv.SwapDB),
		cluster.WithLogf(func(format string, args ...any) {
			fmt.Fprintf(logw, "dualsimd: "+format+"\n", args...)
		}),
	)
	if err != nil {
		return err
	}
	reg.GaugeFunc("dualsimd_replica_lag", "epochs behind the primary", func() float64 {
		return float64(f.Stats().Lag)
	})
	reg.GaugeFunc("dualsimd_replica_primary_epoch", "primary epoch at the last tail header", func() float64 {
		return float64(f.Stats().PrimaryEpoch)
	})
	reg.GaugeFunc("dualsimd_replica_bootstraps_total", "snapshot bootstraps (>1 means epoch gaps)", func() float64 {
		return float64(f.Stats().Bootstraps)
	})
	reg.GaugeFunc("dualsimd_replica_applied_total", "WAL records replayed into the session", func() float64 {
		return float64(f.Stats().Applied)
	})
	reg.GaugeFunc("dualsimd_replica_gaps_total", "epoch gaps that forced a re-bootstrap", func() float64 {
		return float64(f.Stats().Gaps)
	})

	fctx, stopFollowing := context.WithCancel(ctx)
	defer stopFollowing()
	followErr := make(chan error, 1)
	go func() { followErr <- f.Run(fctx) }()
	fmt.Fprintf(logw, "dualsimd: replica of %s (maxlag %d)\n", cfg.follow, cfg.maxLag)

	err = serveAndDrain(ctx, cfg, srv, logw, ready, func() error {
		stopFollowing()
		<-followErr // replication has stopped; sessions are non-durable
		if db := f.DB(); db != nil {
			return db.Close()
		}
		return nil
	})
	return err
}

// serverOptions maps the serving flags onto server options.
func serverOptions(cfg daemonConfig) []server.Option {
	var opts []server.Option
	if cfg.maxInFlight > 0 {
		opts = append(opts, server.WithMaxInFlight(cfg.maxInFlight))
	}
	// Always passed through: WithQueueDepth validates, so a negative
	// flag value fails loudly instead of silently keeping the default.
	opts = append(opts, server.WithQueueDepth(cfg.queueDepth))
	if cfg.timeout > 0 {
		opts = append(opts, server.WithDefaultTimeout(cfg.timeout))
	}
	if cfg.slowLog > 0 {
		opts = append(opts, server.WithSlowQueryLog(cfg.slowLog, cfg.slowThreshold))
	}
	if cfg.stmtStats >= 0 {
		opts = append(opts, server.WithStatementStats(cfg.stmtStats))
	}
	return opts
}

// openAccessLog resolves the -accesslog flag ("-" means stdout). The
// returned closer is a no-op for stdout.
func openAccessLog(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { _ = f.Close() }, nil // shutdown-path close; nothing left to ack
}

// serveAndDrain listens, serves until ctx cancels or a termination
// signal arrives, then drains and runs the final hook (checkpoint for a
// durable primary, replication stop for a replica).
func serveAndDrain(ctx context.Context, cfg daemonConfig, srv *server.Server, logw *os.File, ready chan<- string, final func() error) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dualsimd: listening on http://%s\n", ln.Addr())

	// The debug surface (pprof, slow-query log) binds its own listener so
	// it is never routable from the serving address.
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dbg := &http.Server{Handler: debugserver.Mux(map[string]http.Handler{
			"/v1/debug/slow":       srv,
			"/v1/debug/statements": srv,
		})}
		go dbg.Serve(dln)
		defer func() { _ = dbg.Close() }() // debug surface only; serving drain is handled below
		fmt.Fprintf(logw, "dualsimd: debug surface on http://%s\n", dln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	var handler http.Handler = srv
	if cfg.accessLog != "" {
		w, closeLog, err := openAccessLog(cfg.accessLog)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer closeLog()
		handler = httplog.New(w).Wrap(srv)
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-sigctx.Done():
	}

	// Drain: flip /readyz to 503 so load balancers stop routing here,
	// then let http.Server.Shutdown wait out in-flight requests (bounded
	// by the grace period). Liveness stays green the whole way down.
	fmt.Fprintf(logw, "dualsimd: draining (grace %v)\n", cfg.drainTimeout)
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if final != nil {
		if err := final(); err != nil {
			return err
		}
	}
	fmt.Fprintf(logw, "dualsimd: drained, bye\n")
	return nil
}

// openSession boots the database. A -data dir that already holds state
// wins over -store: the daemon warm starts from the latest snapshot
// plus the WAL tail, preserving the epoch sequence, without re-parsing
// the N-Triples input.
func openSession(cfg daemonConfig, logw *os.File) (*dualsim.DB, error) {
	opts, err := sessionOptions(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.data != "" && persist.HasState(cfg.data) {
		start := time.Now()
		db, err := dualsim.OpenDir(cfg.data, opts...)
		if err != nil {
			return nil, err
		}
		extra := ""
		if cfg.store != "" {
			extra = fmt.Sprintf(" (-store %s ignored)", cfg.store)
		}
		st := db.Store()
		fmt.Fprintf(logw, "warm start from %s: epoch %d, %d triples, %d nodes, %d predicates in %v%s\n",
			cfg.data, db.Epoch(), st.NumTriples(), st.NumNodes(), st.NumPreds(),
			time.Since(start).Round(time.Millisecond), extra)
		return db, nil
	}
	if cfg.store == "" {
		if cfg.data != "" {
			return nil, fmt.Errorf("-data %s holds no snapshot yet; a cold start needs -store", cfg.data)
		}
		return nil, fmt.Errorf("-store (or a -data dir with state) is required")
	}
	f, err := os.Open(cfg.store)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if cfg.shard != "" {
		spec, err := cluster.ParseShardSpec(cfg.shard)
		if err != nil {
			return nil, err
		}
		full := st.NumTriples()
		if st, err = cluster.ShardStore(st, spec); err != nil {
			return nil, err
		}
		fmt.Fprintf(logw, "shard %s: kept %d of %d triples (%d predicates)\n",
			spec, st.NumTriples(), full, st.NumPreds())
	}
	fmt.Fprintf(logw, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))
	if cfg.data != "" {
		opts = append(opts, dualsim.WithDataDir(cfg.data))
		fmt.Fprintf(logw, "durable: data dir %s (checkpoint every %d applies)\n", cfg.data, cfg.checkpointEvery)
	}
	return dualsim.Open(st, opts...)
}

// sessionOptions maps the flags onto session options (mirrors
// cmd/dualsim).
func sessionOptions(cfg daemonConfig) ([]dualsim.Option, error) {
	opts := []dualsim.Option{dualsim.WithPruning(cfg.prune)}
	switch cfg.engine {
	case "volcano":
		opts = append(opts, dualsim.WithEngine(dualsim.Volcano))
	case "hash":
		opts = append(opts, dualsim.WithEngine(dualsim.HashJoin))
	case "index":
		opts = append(opts, dualsim.WithEngine(dualsim.IndexNL))
	default:
		return nil, fmt.Errorf("unknown engine %q (want volcano, hash or index)", cfg.engine)
	}
	if cfg.workers > 0 {
		opts = append(opts, dualsim.WithWorkers(cfg.workers))
	}
	if cfg.fingerprintK != 0 {
		if !cfg.prune {
			return nil, fmt.Errorf("-fingerprint pre-filters the pruning solve; it requires -prune")
		}
		opts = append(opts, dualsim.WithFingerprint(cfg.fingerprintK))
	}
	if cfg.planCache > 0 {
		opts = append(opts, dualsim.WithPlanCache(cfg.planCache))
	}
	if cfg.batchWorkers > 0 {
		opts = append(opts, dualsim.WithBatchWorkers(cfg.batchWorkers))
	}
	if cfg.compactAt > 0 {
		opts = append(opts, dualsim.WithCompactionThreshold(cfg.compactAt))
	}
	if cfg.checkpointEvery != 0 {
		// Harmless on a non-durable session (the option only fires with a
		// WAL); passed through even when negative so the option's
		// validation fails loudly instead of silently ignoring the flag.
		opts = append(opts, dualsim.WithCheckpointEvery(cfg.checkpointEvery))
	}
	if cfg.maxQueryMem != 0 {
		// Passed through even when negative for loud validation.
		opts = append(opts, dualsim.WithMaxQueryMemory(cfg.maxQueryMem))
	}
	return opts, nil
}
