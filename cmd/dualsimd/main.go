// Command dualsimd serves a graph database over HTTP — the network
// front end of the dual-simulation engine:
//
//	dualsimd -data db.nt -addr :8321
//	dualsimd -data db.nt -addr 127.0.0.1:0 -plancache 256 -maxinflight 16
//	dualsimd -data db.nt -prune=false -engine index
//	dualsimd -data db.nt -compactat 4096 -fingerprint 2
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/query     query via the plan cache; ?stream=1 for NDJSON rows
//	POST /v1/batch     concurrent query batch
//	POST /v1/apply     live delta (dels before adds, atomic, epoch++)
//	POST /v1/compact   consolidate the update overlay
//	GET  /v1/snapshot  epoch + store shape
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus-style metrics
//
// The daemon is a thin shell over the session layer: one dualsim.DB
// with a plan cache serves every request; admission control
// (-maxinflight, -queuedepth) sheds overload with 429 + Retry-After.
// On SIGINT/SIGTERM it drains: /healthz flips to 503, in-flight queries
// finish (bounded by -draintimeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualsim"
	"dualsim/internal/server"
)

func main() {
	cfg := parseFlags(os.Args[1:], flag.ExitOnError)
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dualsimd:", err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	addr         string
	data         string
	engine       string
	prune        bool
	fingerprintK int
	workers      int
	planCache    int
	batchWorkers int
	compactAt    int
	maxInFlight  int
	queueDepth   int
	timeout      time.Duration
	drainTimeout time.Duration
}

func parseFlags(args []string, onError flag.ErrorHandling) daemonConfig {
	fs := flag.NewFlagSet("dualsimd", onError)
	cfg := daemonConfig{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free one)")
	fs.StringVar(&cfg.data, "data", "", "N-Triples database file (required)")
	fs.StringVar(&cfg.engine, "engine", "hash", "evaluation engine: hash or index")
	fs.BoolVar(&cfg.prune, "prune", true, "evaluate through the dual-simulation pruning pipeline")
	fs.IntVar(&cfg.fingerprintK, "fingerprint", 0, "pre-filter via a k-bounded bisimulation fingerprint (0 = off)")
	fs.IntVar(&cfg.workers, "workers", 0, "parallelize bit-matrix multiplications over this many goroutines")
	fs.IntVar(&cfg.planCache, "plancache", 128, "LRU plan cache capacity (0 disables)")
	fs.IntVar(&cfg.batchWorkers, "batchworkers", 0, "batch pool width (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.compactAt, "compactat", 0, "auto-compact the update overlay at this ledger size (0 = manual)")
	fs.IntVar(&cfg.maxInFlight, "maxinflight", 0, "concurrently executing requests (0 = 2×GOMAXPROCS)")
	fs.IntVar(&cfg.queueDepth, "queuedepth", 64, "requests waiting for a slot before shedding with 429")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-request execution bound (0 = none; requests may set timeoutMs)")
	fs.DurationVar(&cfg.drainTimeout, "draintimeout", 10*time.Second, "grace period for in-flight queries on shutdown")
	fs.Parse(args) // ExitOnError in production; tests pass ContinueOnError configs directly
	return cfg
}

// run loads the store, opens the session, serves until ctx is cancelled
// or a termination signal arrives, then drains and exits. When ready is
// non-nil, the bound address is sent on it once the listener is up (the
// hook the tests and -addr :0 users rely on).
func run(ctx context.Context, cfg daemonConfig, logw *os.File, ready chan<- string) error {
	if cfg.data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(cfg.data)
	if err != nil {
		return err
	}
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))

	db, err := openSession(st, cfg)
	if err != nil {
		return err
	}
	defer db.Close()

	var srvOpts []server.Option
	if cfg.maxInFlight > 0 {
		srvOpts = append(srvOpts, server.WithMaxInFlight(cfg.maxInFlight))
	}
	// Always passed through: WithQueueDepth validates, so a negative
	// flag value fails loudly instead of silently keeping the default.
	srvOpts = append(srvOpts, server.WithQueueDepth(cfg.queueDepth))
	if cfg.timeout > 0 {
		srvOpts = append(srvOpts, server.WithDefaultTimeout(cfg.timeout))
	}
	srv, err := server.New(db, srvOpts...)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dualsimd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-sigctx.Done():
	}

	// Drain: flip health to 503 so load balancers stop routing here,
	// then let http.Server.Shutdown wait out in-flight requests (bounded
	// by the grace period).
	fmt.Fprintf(logw, "dualsimd: draining (grace %v)\n", cfg.drainTimeout)
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(logw, "dualsimd: drained, bye\n")
	return nil
}

// openSession maps the flags onto session options (mirrors cmd/dualsim).
func openSession(st *dualsim.Store, cfg daemonConfig) (*dualsim.DB, error) {
	opts := []dualsim.Option{dualsim.WithPruning(cfg.prune)}
	switch cfg.engine {
	case "hash":
		opts = append(opts, dualsim.WithEngine(dualsim.HashJoin))
	case "index":
		opts = append(opts, dualsim.WithEngine(dualsim.IndexNL))
	default:
		return nil, fmt.Errorf("unknown engine %q (want hash or index)", cfg.engine)
	}
	if cfg.workers > 0 {
		opts = append(opts, dualsim.WithWorkers(cfg.workers))
	}
	if cfg.fingerprintK != 0 {
		if !cfg.prune {
			return nil, fmt.Errorf("-fingerprint pre-filters the pruning solve; it requires -prune")
		}
		opts = append(opts, dualsim.WithFingerprint(cfg.fingerprintK))
	}
	if cfg.planCache > 0 {
		opts = append(opts, dualsim.WithPlanCache(cfg.planCache))
	}
	if cfg.batchWorkers > 0 {
		opts = append(opts, dualsim.WithBatchWorkers(cfg.batchWorkers))
	}
	if cfg.compactAt > 0 {
		opts = append(opts, dualsim.WithCompactionThreshold(cfg.compactAt))
	}
	return dualsim.Open(st, opts...)
}
