// Command dualsimd serves a graph database over HTTP — the network
// front end of the dual-simulation engine:
//
//	dualsimd -store db.nt -addr :8321
//	dualsimd -store db.nt -data /var/lib/dualsim     # durable serving
//	dualsimd -data /var/lib/dualsim                  # warm restart
//	dualsimd -store db.nt -addr 127.0.0.1:0 -plancache 256 -maxinflight 16
//	dualsimd -store db.nt -prune=false -engine index
//	dualsimd -store db.nt -compactat 4096 -fingerprint 2
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/query      query via the plan cache; ?stream=1 for NDJSON rows
//	POST /v1/batch      concurrent query batch
//	POST /v1/apply      live delta (dels before adds, atomic, epoch++)
//	POST /v1/compact    consolidate the update overlay
//	POST /v1/checkpoint roll the WAL into a fresh on-disk snapshot
//	GET  /v1/snapshot   epoch + store shape
//	GET  /healthz       liveness (503 while draining)
//	GET  /metrics       Prometheus-style metrics
//
// The daemon is a thin shell over the session layer: one dualsim.DB
// with a plan cache serves every request; admission control
// (-maxinflight, -queuedepth) sheds overload with 429 + Retry-After.
//
// With -data the database is durable: every acknowledged apply is
// WAL-logged (fsync'd) into the data dir, -checkpointevery rolls the
// log into binary snapshots, and a restart against the same dir warm
// starts — latest snapshot + WAL tail, same epoch sequence, no
// re-parsing of the original N-Triples input (-store is then only
// needed for the very first boot and is ignored once the dir holds
// state).
//
// On SIGINT/SIGTERM it drains: /healthz flips to 503, in-flight queries
// finish (bounded by -draintimeout), a final checkpoint is written when
// durable, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualsim"
	"dualsim/internal/persist"
	"dualsim/internal/server"
)

func main() {
	cfg := parseFlags(os.Args[1:], flag.ExitOnError)
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dualsimd:", err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	addr            string
	store           string
	data            string
	engine          string
	prune           bool
	fingerprintK    int
	workers         int
	planCache       int
	batchWorkers    int
	compactAt       int
	checkpointEvery int
	maxInFlight     int
	queueDepth      int
	timeout         time.Duration
	drainTimeout    time.Duration
}

func parseFlags(args []string, onError flag.ErrorHandling) daemonConfig {
	fs := flag.NewFlagSet("dualsimd", onError)
	cfg := daemonConfig{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free one)")
	fs.StringVar(&cfg.store, "store", "", "N-Triples database file (required unless -data holds state)")
	fs.StringVar(&cfg.data, "data", "", "durable data dir: snapshot + WAL; warm restart when it holds state")
	fs.StringVar(&cfg.engine, "engine", "hash", "evaluation engine: hash or index")
	fs.BoolVar(&cfg.prune, "prune", true, "evaluate through the dual-simulation pruning pipeline")
	fs.IntVar(&cfg.fingerprintK, "fingerprint", 0, "pre-filter via a k-bounded bisimulation fingerprint (0 = off)")
	fs.IntVar(&cfg.workers, "workers", 0, "parallelize bit-matrix multiplications over this many goroutines")
	fs.IntVar(&cfg.planCache, "plancache", 128, "LRU plan cache capacity (0 disables)")
	fs.IntVar(&cfg.batchWorkers, "batchworkers", 0, "batch pool width (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.compactAt, "compactat", 0, "auto-compact the update overlay at this ledger size (0 = manual)")
	fs.IntVar(&cfg.checkpointEvery, "checkpointevery", 1024, "with -data, checkpoint every n WAL records (0 = only on compact/demand)")
	fs.IntVar(&cfg.maxInFlight, "maxinflight", 0, "concurrently executing requests (0 = 2×GOMAXPROCS)")
	fs.IntVar(&cfg.queueDepth, "queuedepth", 64, "requests waiting for a slot before shedding with 429")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-request execution bound (0 = none; requests may set timeoutMs)")
	fs.DurationVar(&cfg.drainTimeout, "draintimeout", 10*time.Second, "grace period for in-flight queries on shutdown")
	fs.Parse(args) // ExitOnError in production; tests pass ContinueOnError configs directly
	return cfg
}

// run opens the session (cold from -store, or warm from -data), serves
// until ctx is cancelled or a termination signal arrives, then drains
// and exits. When ready is non-nil, the bound address is sent on it once
// the listener is up (the hook the tests and -addr :0 users rely on).
func run(ctx context.Context, cfg daemonConfig, logw *os.File, ready chan<- string) error {
	db, err := openSession(cfg, logw)
	if err != nil {
		return err
	}
	defer db.Close()

	var srvOpts []server.Option
	if cfg.maxInFlight > 0 {
		srvOpts = append(srvOpts, server.WithMaxInFlight(cfg.maxInFlight))
	}
	// Always passed through: WithQueueDepth validates, so a negative
	// flag value fails loudly instead of silently keeping the default.
	srvOpts = append(srvOpts, server.WithQueueDepth(cfg.queueDepth))
	if cfg.timeout > 0 {
		srvOpts = append(srvOpts, server.WithDefaultTimeout(cfg.timeout))
	}
	srv, err := server.New(db, srvOpts...)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dualsimd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-sigctx.Done():
	}

	// Drain: flip health to 503 so load balancers stop routing here,
	// then let http.Server.Shutdown wait out in-flight requests (bounded
	// by the grace period).
	fmt.Fprintf(logw, "dualsimd: draining (grace %v)\n", cfg.drainTimeout)
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// A final checkpoint after the last request finished: the next boot
	// loads the snapshot directly with nothing to replay.
	if db.Durable() {
		cs, err := db.Checkpoint(context.Background())
		if err != nil {
			return fmt.Errorf("drain checkpoint: %w", err)
		}
		fmt.Fprintf(logw, "dualsimd: checkpointed epoch %d (%d bytes)\n", cs.Epoch, cs.SnapshotBytes)
	}
	fmt.Fprintf(logw, "dualsimd: drained, bye\n")
	return nil
}

// openSession boots the database. A -data dir that already holds state
// wins over -store: the daemon warm starts from the latest snapshot
// plus the WAL tail, preserving the epoch sequence, without re-parsing
// the N-Triples input.
func openSession(cfg daemonConfig, logw *os.File) (*dualsim.DB, error) {
	opts, err := sessionOptions(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.data != "" && persist.HasState(cfg.data) {
		start := time.Now()
		db, err := dualsim.OpenDir(cfg.data, opts...)
		if err != nil {
			return nil, err
		}
		extra := ""
		if cfg.store != "" {
			extra = fmt.Sprintf(" (-store %s ignored)", cfg.store)
		}
		st := db.Store()
		fmt.Fprintf(logw, "warm start from %s: epoch %d, %d triples, %d nodes, %d predicates in %v%s\n",
			cfg.data, db.Epoch(), st.NumTriples(), st.NumNodes(), st.NumPreds(),
			time.Since(start).Round(time.Millisecond), extra)
		return db, nil
	}
	if cfg.store == "" {
		if cfg.data != "" {
			return nil, fmt.Errorf("-data %s holds no snapshot yet; a cold start needs -store", cfg.data)
		}
		return nil, fmt.Errorf("-store (or a -data dir with state) is required")
	}
	f, err := os.Open(cfg.store)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	st, err := dualsim.LoadNTriples(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(logw, "loaded %d triples, %d nodes, %d predicates in %v\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds(), time.Since(start).Round(time.Millisecond))
	if cfg.data != "" {
		opts = append(opts, dualsim.WithDataDir(cfg.data))
		fmt.Fprintf(logw, "durable: data dir %s (checkpoint every %d applies)\n", cfg.data, cfg.checkpointEvery)
	}
	return dualsim.Open(st, opts...)
}

// sessionOptions maps the flags onto session options (mirrors
// cmd/dualsim).
func sessionOptions(cfg daemonConfig) ([]dualsim.Option, error) {
	opts := []dualsim.Option{dualsim.WithPruning(cfg.prune)}
	switch cfg.engine {
	case "hash":
		opts = append(opts, dualsim.WithEngine(dualsim.HashJoin))
	case "index":
		opts = append(opts, dualsim.WithEngine(dualsim.IndexNL))
	default:
		return nil, fmt.Errorf("unknown engine %q (want hash or index)", cfg.engine)
	}
	if cfg.workers > 0 {
		opts = append(opts, dualsim.WithWorkers(cfg.workers))
	}
	if cfg.fingerprintK != 0 {
		if !cfg.prune {
			return nil, fmt.Errorf("-fingerprint pre-filters the pruning solve; it requires -prune")
		}
		opts = append(opts, dualsim.WithFingerprint(cfg.fingerprintK))
	}
	if cfg.planCache > 0 {
		opts = append(opts, dualsim.WithPlanCache(cfg.planCache))
	}
	if cfg.batchWorkers > 0 {
		opts = append(opts, dualsim.WithBatchWorkers(cfg.batchWorkers))
	}
	if cfg.compactAt > 0 {
		opts = append(opts, dualsim.WithCompactionThreshold(cfg.compactAt))
	}
	if cfg.checkpointEvery != 0 {
		// Harmless on a non-durable session (the option only fires with a
		// WAL); passed through even when negative so the option's
		// validation fails loudly instead of silently ignoring the flag.
		opts = append(opts, dualsim.WithCheckpointEvery(cfg.checkpointEvery))
	}
	return opts, nil
}
