// Command dualsimvet runs the dualsim invariant suite (internal/lint):
// custom static analyzers enforcing the engine's correctness contracts
// — context threading, wire-stable JSON tags, lock discipline,
// allocation-free hot paths and checked durability errors.
//
// Usage:
//
//	dualsimvet ./...                     # standalone (re-execs go vet)
//	go vet -vettool=$(which dualsimvet) ./...
//	dualsimvet -errsync -ctxflow ./...   # run a subset
//
// Exit status is 0 when the tree is clean, 2 when any analyzer reports
// a diagnostic, 1 on operational errors.
package main

import (
	"os"

	"dualsim/internal/lint"
	"dualsim/internal/lint/vetdriver"
)

func main() {
	os.Exit(vetdriver.Main("dualsimvet", os.Args[1:], lint.Analyzers()))
}
