package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLUBM(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lubm.nt")
	if err := run("lubm", 1, 1, 7, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ub:worksFor") {
		t.Fatal("LUBM predicates missing from output")
	}
}

func TestRunKG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "kg.nt")
	if err := run("kg", 1, 1, 7, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dbo:director") {
		t.Fatal("KG predicates missing from output")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 1, 1, 7, ""); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("kg", 1, 1, 7, "/no/such/dir/out.nt"); err == nil {
		t.Fatal("bad output path accepted")
	}
}
