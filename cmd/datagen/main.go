// Command datagen writes one of the two synthetic benchmark datasets as
// N-Triples to a file or stdout:
//
//	datagen -dataset lubm -universities 10 -seed 42 -out lubm.nt
//	datagen -dataset kg -scale 2 -seed 42 > kg.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dualsim"
)

func main() {
	dataset := flag.String("dataset", "kg", "dataset: lubm or kg")
	universities := flag.Int("universities", 3, "LUBM scale (number of universities)")
	scale := flag.Int("scale", 1, "KG scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*dataset, *universities, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, universities, scale int, seed int64, out string) error {
	var ts []dualsim.Triple
	switch dataset {
	case "lubm":
		ts = dualsim.GenerateLUBM(universities, seed)
	case "kg":
		ts = dualsim.GenerateKG(scale, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want lubm or kg)", dataset)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	st, err := dualsim.FromTriples(ts)
	if err != nil {
		return err
	}
	if err := dualsim.DumpNTriples(w, st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples (%d nodes, %d predicates)\n",
		st.NumTriples(), st.NumNodes(), st.NumPreds())
	return nil
}
