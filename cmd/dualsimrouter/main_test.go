package main

import (
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"dualsim"
	"dualsim/client"
	"dualsim/internal/cluster"
	"dualsim/internal/queries"
	"dualsim/internal/server"
)

// TestMain doubles the test binary as the router daemon when
// re-executed with DUALSIMROUTER_MAIN=1 (mirrors cmd/dualsimd).
func TestMain(m *testing.M) {
	if os.Getenv("DUALSIMROUTER_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-shard", "http://a:1,http://a2:1", "-shard", "http://b:1", "-maxlag", "2",
	}, flag.ContinueOnError)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.shards) != 2 || len(cfg.shards[0]) != 2 || cfg.shards[1][0] != "http://b:1" {
		t.Fatalf("shards: %v", cfg.shards)
	}
	if cfg.maxLag != 2 || cfg.probeEvery != time.Second || cfg.drainTimeout != 10*time.Second {
		t.Fatalf("config: %+v", cfg)
	}

	if _, err := parseFlags(nil, flag.ContinueOnError); err == nil {
		t.Fatal("no -shard accepted")
	}
	if _, err := parseFlags([]string{"-shard", "http://a:1,,http://b:1"}, flag.ContinueOnError); err == nil {
		t.Fatal("empty endpoint accepted")
	}
}

// startShards serves each partition of Fig. 1(a) like a shard daemon.
func startShards(t *testing.T, n int) []string {
	t.Helper()
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < n; i++ {
		st, err := cluster.ShardStore(full, cluster.ShardSpec{Index: i, N: n})
		if err != nil {
			t.Fatal(err)
		}
		db, err := dualsim.Open(st)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(db)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		t.Cleanup(func() {
			hs.Close()
			db.Close()
		})
		urls = append(urls, hs.URL)
	}
	return urls
}

// The daemon end-to-end: run() over two real shard servers, a query
// through the router matching a single node, and a clean drain.
func TestRouterDaemonServesAndDrains(t *testing.T) {
	urls := startShards(t, 2)
	cfg := routerConfig{
		addr:         "127.0.0.1:0",
		shards:       [][]string{{urls[0]}, {urls[1]}},
		probeEvery:   50 * time.Millisecond,
		drainTimeout: 5 * time.Second,
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, devnull, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("router died before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router never became ready")
	}
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ready(context.Background()); err != nil {
		t.Fatalf("probed router not ready: %v", err)
	}

	src := `SELECT * WHERE { { ?d <directed> ?m . ?d <worked_with> ?c . } UNION { ?x <awarded> ?a . } }`
	out, err := c.Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a single node over the whole store.
	full, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(full)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, _, err := db.Snapshot().Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != len(res.Rows) || len(out.Rows) == 0 {
		t.Fatalf("router answered %d rows, single node %d", len(out.Rows), len(res.Rows))
	}
	var vars []string
	vars = append(vars, out.Vars...)
	sort.Strings(vars)
	want := append([]string{}, res.Vars...)
	sort.Strings(want)
	if strings.Join(vars, ",") != strings.Join(want, ",") {
		t.Fatalf("router vars %v, single node %v", out.Vars, res.Vars)
	}

	cancel() // run treats ctx cancellation like SIGTERM: drain + exit
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain")
	}
}
