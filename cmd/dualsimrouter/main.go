// Command dualsimrouter is the scatter-gather front end of a sharded
// dualsimd cluster: it speaks the single-node wire protocol while
// fanning queries over predicate-hash shards and load-balancing reads
// across WAL-streaming replicas.
//
//	dualsimrouter -shard http://shard0:8321 -shard http://shard1:8321
//	dualsimrouter -shard http://s0:8321,http://s0-replica:8322 \
//	              -shard http://s1:8321 -maxlag 2 -addr :8320
//
// Each -shard flag lists one shard's endpoints, comma-separated,
// primary first; the flag order IS the shard order and must match the
// "-shard i/N" partitioning the daemons were loaded with. Writes go to
// primaries; reads round-robin over endpoints that are up, ready and
// within -maxlag epochs of the shard's freshest known epoch, failing
// over when an endpoint dies mid-request.
//
// Endpoints (see internal/cluster/router for routing semantics):
//
//	POST /v1/query    scattered query; ?stream=1 for NDJSON rows
//	POST /v1/batch    each member routed independently
//	POST /v1/apply    delta split by predicate placement
//	GET  /v1/snapshot aggregated epoch + store shape
//	GET  /v1/cluster  per-shard endpoint health, epochs, latencies
//	GET  /healthz     router liveness
//	GET  /readyz      503 until every shard has a routable endpoint
//	GET  /metrics     router + per-endpoint metrics
//
// On SIGINT/SIGTERM it drains: /readyz flips to 503, in-flight requests
// finish (bounded by -draintimeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dualsim/internal/buildinfo"
	"dualsim/internal/cluster/router"
	"dualsim/internal/debugserver"
	"dualsim/internal/httplog"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], flag.ExitOnError)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dualsimrouter:", err)
		os.Exit(2)
	}
	if cfg.version {
		fmt.Println(buildinfo.String("dualsimrouter"))
		return
	}
	if err := run(context.Background(), cfg, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dualsimrouter:", err)
		os.Exit(1)
	}
}

// routerConfig carries the parsed flags.
type routerConfig struct {
	addr          string
	shards        [][]string
	maxLag        uint64
	probeEvery    time.Duration
	timeout       time.Duration
	drainTimeout  time.Duration
	debugAddr     string
	accessLog     string
	slowLog       int
	slowThreshold time.Duration
	version       bool
}

// shardList collects repeated -shard flags, each a comma-separated
// endpoint list (primary first).
type shardList [][]string

func (s *shardList) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardList) Set(v string) error {
	var eps []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			return fmt.Errorf("empty endpoint in -shard %q", v)
		}
		eps = append(eps, u)
	}
	*s = append(*s, eps)
	return nil
}

func parseFlags(args []string, onError flag.ErrorHandling) (routerConfig, error) {
	fs := flag.NewFlagSet("dualsimrouter", onError)
	cfg := routerConfig{}
	var shards shardList
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8320", "listen address (host:port; port 0 picks a free one)")
	fs.Var(&shards, "shard", "one shard's endpoints, comma-separated, primary first (repeat per shard, in shard order)")
	fs.Uint64Var(&cfg.maxLag, "maxlag", 0, "epochs of replica staleness reads may tolerate")
	fs.DurationVar(&cfg.probeEvery, "probeevery", time.Second, "health-probe period for shard endpoints")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-request bound (0 = none; requests may set timeoutMs)")
	fs.DurationVar(&cfg.drainTimeout, "draintimeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	fs.StringVar(&cfg.debugAddr, "debugaddr", "", "serve pprof + /v1/debug/slow on this extra address (off the serving listener)")
	fs.StringVar(&cfg.accessLog, "accesslog", "", "write a JSON access log to this file (\"-\" for stdout)")
	fs.IntVar(&cfg.slowLog, "slowlog", 0, "keep this many slow queries at GET /v1/debug/slow (0 disables)")
	fs.DurationVar(&cfg.slowThreshold, "slowthreshold", 0, "with -slowlog, only record queries at least this slow (0 = all)")
	fs.BoolVar(&cfg.version, "version", false, "print build version and exit")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.shards = shards
	if cfg.version {
		return cfg, nil
	}
	if len(cfg.shards) == 0 {
		return cfg, fmt.Errorf("at least one -shard is required")
	}
	return cfg, nil
}

// run builds the router, probes every endpoint once so the first
// request routes on real health, serves until ctx is cancelled or a
// termination signal arrives, then drains.
func run(ctx context.Context, cfg routerConfig, logw *os.File, ready chan<- string) error {
	opts := []router.Option{
		router.WithMaxLag(cfg.maxLag),
		router.WithProbeEvery(cfg.probeEvery),
	}
	if cfg.timeout > 0 {
		opts = append(opts, router.WithDefaultTimeout(cfg.timeout))
	}
	if cfg.slowLog > 0 {
		opts = append(opts, router.WithSlowQueryLog(cfg.slowLog, cfg.slowThreshold))
	}
	rt, err := router.New(cfg.shards, opts...)
	if err != nil {
		return err
	}
	for i, eps := range cfg.shards {
		fmt.Fprintf(logw, "dualsimrouter: shard %d/%d: %s\n", i, len(cfg.shards), strings.Join(eps, ", "))
	}

	probeCtx, stopProbes := context.WithCancel(ctx)
	defer stopProbes()
	rt.Probe(probeCtx)
	go rt.Run(probeCtx)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "dualsimrouter: listening on http://%s\n", ln.Addr())

	// Debug surface on its own listener, mirroring dualsimd.
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dbg := &http.Server{Handler: debugserver.Mux(map[string]http.Handler{"/v1/debug/slow": rt.Handler()})}
		go dbg.Serve(dln)
		defer dbg.Close()
		fmt.Fprintf(logw, "dualsimrouter: debug surface on http://%s\n", dln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	var handler http.Handler = rt.Handler()
	if cfg.accessLog != "" {
		w, closeLog, err := openAccessLog(cfg.accessLog)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer closeLog()
		handler = httplog.New(w).Wrap(handler)
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-sigctx.Done():
	}

	fmt.Fprintf(logw, "dualsimrouter: draining (grace %v)\n", cfg.drainTimeout)
	rt.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(logw, "dualsimrouter: drained, bye\n")
	return nil
}

// openAccessLog resolves the -accesslog flag ("-" means stdout). The
// returned closer is a no-op for stdout.
func openAccessLog(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
