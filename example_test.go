package dualsim_test

import (
	"context"
	"fmt"
	"sort"

	"dualsim"
)

// movieGraph is the running example of the paper (Fig. 1(a), abridged).
func movieGraph() *dualsim.Store {
	st, err := dualsim.FromTriples([]dualsim.Triple{
		dualsim.T("B._De_Palma", "directed", "Mission:_Impossible"),
		dualsim.T("B._De_Palma", "worked_with", "D._Koepp"),
		dualsim.T("G._Hamilton", "directed", "Goldfinger"),
		dualsim.T("G._Hamilton", "worked_with", "H._Saltzman"),
		dualsim.T("T._Young", "directed", "From_Russia_with_Love"),
		dualsim.T("D._Koepp", "directed", "Mortdecai"),
	})
	if err != nil {
		panic(err)
	}
	return st
}

// ExampleOpen shows the session flow: Open a DB over the store, Prepare
// a query once, Exec(ctx) the pruning pipeline any number of times.
func ExampleOpen() {
	st := movieGraph()
	db, _ := dualsim.Open(st, dualsim.WithEngine(dualsim.HashJoin))
	defer db.Close()

	pq, _ := db.Prepare(`SELECT * WHERE {
	  ?director <directed> ?movie .
	  ?director <worked_with> ?coworker . }`)

	res, stats, _ := pq.Exec(context.Background())
	fmt.Printf("%d rows; %d of %d triples survived pruning\n",
		res.Len(), stats.TriplesAfter, stats.TriplesBefore)
	// Output: 2 rows; 4 of 6 triples survived pruning
}

// ExampleDB_Exec runs a one-shot query with per-stage statistics.
func ExampleDB_Exec() {
	st := movieGraph()
	db, _ := dualsim.Open(st)

	res, stats, _ := db.Exec(context.Background(), `SELECT * WHERE {
	  ?director <directed> ?movie .
	  OPTIONAL { ?director <worked_with> ?coworker . } }`)
	fmt.Println("rows:", res.Len())
	for _, ss := range stats.Stages {
		fmt.Printf("%s: %d -> %d\n", ss.Name, ss.In, ss.Out)
	}
	// Output:
	// rows: 4
	// prune: 6 -> 6
	// evaluate: 6 -> 4
}

// ExampleDualSimulate computes the candidate sets of the paper's query
// (X1): directors with a movie and a coworker. (DualSimulate is the
// deprecated one-shot form of DB.DualSimulate.)
func ExampleDualSimulate() {
	st := movieGraph()
	q := dualsim.MustParseQuery(`SELECT * WHERE {
	  ?director <directed> ?movie .
	  ?director <worked_with> ?coworker . }`)

	rel, _ := dualsim.DualSimulate(st, q, dualsim.Options{})
	var names []string
	for _, t := range rel.Candidates("director") {
		names = append(names, t.Value)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [B._De_Palma G._Hamilton]
}

// ExamplePrune reduces the database to the triples that can participate
// in a match.
func ExamplePrune() {
	st := movieGraph()
	q := dualsim.MustParseQuery(`SELECT * WHERE {
	  ?director <directed> ?movie .
	  ?director <worked_with> ?coworker . }`)

	p, _ := dualsim.Prune(st, q, dualsim.Options{})
	fmt.Printf("%d of %d triples survive\n", p.Kept(), p.Total())

	full, _ := dualsim.Evaluate(st, q, dualsim.HashJoin)
	pruned, _ := dualsim.Evaluate(p.Store(), q, dualsim.HashJoin)
	fmt.Println("identical results:", full.Equal(pruned))
	// Output:
	// 4 of 6 triples survive
	// identical results: true
}

// ExampleEvaluate runs an OPTIONAL query under the formal set semantics.
func ExampleEvaluate() {
	st := movieGraph()
	q := dualsim.MustParseQuery(`SELECT * WHERE {
	  ?director <directed> ?movie .
	  OPTIONAL { ?director <worked_with> ?coworker . } }`)

	res, _ := dualsim.Evaluate(st, q, dualsim.IndexNL)
	fmt.Println("rows:", res.Len())
	// Output: rows: 4
}

// ExampleSimulatePattern uses the pattern-graph API directly, without
// SPARQL.
func ExampleSimulatePattern() {
	st := movieGraph()
	p := dualsim.NewPattern().
		Edge("director", "directed", "movie").
		Edge("director", "worked_with", "coworker")

	rel, _ := dualsim.SimulatePattern(st, p, dualsim.Options{})
	fmt.Println("movies:", len(rel.Candidates("movie")))
	// Output: movies: 2
}

// ExampleIsWellDesigned classifies the paper's example queries.
func ExampleIsWellDesigned() {
	x2 := dualsim.MustParseQuery(`SELECT * WHERE {
	  ?d <directed> ?m OPTIONAL { ?d <worked_with> ?c } }`)
	x3 := dualsim.MustParseQuery(`SELECT * WHERE {
	  { { ?v1 <a> ?v2 } OPTIONAL { ?v3 <b> ?v2 } } { ?v3 <c> ?v4 } }`)
	fmt.Println(dualsim.IsWellDesigned(x2), dualsim.IsWellDesigned(x3))
	// Output: true false
}
