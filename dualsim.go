// Package dualsim is a Go implementation of fast dual simulation
// processing for graph database queries, reproducing Mennicke et al.,
// "Fast Dual Simulation Processing of Graph Database Queries" (ICDE
// 2019).
//
// Dual simulation is a relaxation of graph pattern matching: instead of
// the homomorphic matches SPARQL computes, it relates every pattern node
// to the set of database nodes that can mimic all of its incoming and
// outgoing edges. The largest dual simulation is computable in polynomial
// time and contains every homomorphic match, which makes it a sound and
// aggressive pruning filter for query processing.
//
// The package is organized around sessions and prepared queries, in the
// database/sql mould:
//
//   - a graph database: an in-memory dictionary-encoded triple store with
//     per-predicate indexes and adjacency bit-matrices
//     (NewStore/LoadNTriples/FromTriples);
//   - a session: Open(st, ...Option) fixes the engine, the solver
//     switches and the pipeline composition for a store; sessions are
//     safe for concurrent use;
//   - prepared queries: db.Prepare(src) parses the SPARQL fragment
//     (SELECT * over basic graph patterns with AND (.), OPTIONAL and
//     UNION) and plans it exactly once — pattern extraction, lowering to
//     per-branch systems of inequalities with their ordering keys, and
//     the fingerprint lookup when the session has one;
//   - execution: pq.Exec(ctx) runs the composable pipeline — optional
//     fingerprint pre-filter, dual-simulation pruning (the paper's
//     headline application), engine evaluation — returning the solution
//     mappings plus per-stage ExecStats. Cancellation and deadlines on
//     ctx interrupt the solver between inequality evaluations and the
//     engines between join row batches;
//   - serving: with WithPlanCache(n), db.Query(ctx, text) resolves
//     repeated query text through an LRU plan cache, and
//     db.ExecBatch(ctx, reqs) fans a slice of queries across a worker
//     pool with per-request stats. Execution state (the solver's χ rows,
//     scratch and the parallel-kernel accumulators) is pooled, so the
//     steady-state hot path performs near-zero solver allocation;
//   - updates: the database is live. db.Apply(ctx, Delta{Adds, Dels})
//     publishes a new epoch-numbered snapshot (MVCC-lite: in-flight
//     executions finish on their epoch, plan cache keys carry the epoch,
//     index maintenance is incremental in the touched predicates and a
//     fingerprint's partition is advanced around the touched nodes),
//     db.Snapshot() pins an epoch for repeatable reads, and
//     WithCompactionThreshold/db.Compact consolidate the update overlay
//     into a pristine store;
//   - network serving: internal/server (behind cmd/dualsimd) exposes a
//     session over HTTP/JSON with NDJSON row streaming, admission
//     control and epoch-tagged responses; the client package is the
//     typed Go client;
//   - durability: with WithDataDir the database lives in a data
//     directory — every Apply is recorded in an fsync'd write-ahead log
//     before acknowledgement, Checkpoint (or WithCheckpointEvery) rolls
//     the log into versioned binary snapshots, and OpenDir warm-starts
//     a session from disk at the same epoch without re-ingesting RDF
//     (see internal/persist for the format).
//
// A minimal session:
//
//	st, _ := dualsim.LoadNTriples(file)
//	db, _ := dualsim.Open(st, dualsim.WithEngine(dualsim.HashJoin))
//	pq, _ := db.Prepare(`SELECT * WHERE { ?d <directed> ?m . }`)
//	res, stats, _ := pq.Exec(ctx) // prune + evaluate; reusable, concurrent
//	fmt.Println(res.Len(), stats.PrunedRatio())
//
// The pre-session one-shot helpers (DualSimulate, Prune, Evaluate) are
// kept as deprecated wrappers over a default session. Pattern-graph
// level dual simulation (NewPattern/SimulatePattern), strong simulation
// and the fingerprint index are exposed alongside (see extensions.go).
package dualsim

import (
	"context"
	"fmt"
	"io"

	"dualsim/internal/bitmat"
	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/rdf"
	"dualsim/internal/soi"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

// Store is the in-memory graph database (Definition 1): a finite set of
// triples over disjoint object and literal universes, with per-predicate
// indexes and lazily built adjacency bit-matrices.
type Store = storage.Store

// Triple is one RDF triple (s, p, o).
type Triple = rdf.Triple

// Term is an RDF term: an IRI (database object) or a literal.
type Term = rdf.Term

// IRI constructs an object term.
func IRI(v string) Term { return rdf.NewIRI(v) }

// Literal constructs a literal term.
func Literal(v string) Term { return rdf.NewLiteral(v) }

// T constructs an object-valued triple, TL a literal-valued one.
func T(s, p, o string) Triple  { return rdf.T(s, p, o) }
func TL(s, p, l string) Triple { return rdf.TL(s, p, l) }

// NewStore returns an empty store; call Add/AddAll then Build.
func NewStore() *Store { return storage.New() }

// FromTriples builds a store from a triple slice.
func FromTriples(ts []Triple) (*Store, error) { return storage.FromTriples(ts) }

// LoadNTriples reads an N-Triples-style stream into a store.
func LoadNTriples(r io.Reader) (*Store, error) {
	ts, err := rdf.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return storage.FromTriples(ts)
}

// ReadNTriples reads an N-Triples-style stream into a triple slice —
// the raw form Delta and AddAll consume.
func ReadNTriples(r io.Reader) ([]Triple, error) {
	return rdf.ReadAll(r)
}

// DumpNTriples writes the store's triples to w.
func DumpNTriples(w io.Writer, st *Store) error {
	return rdf.WriteAll(w, st.Triples())
}

// Query is a parsed SELECT * query.
type Query = sparql.Query

// ParseQuery parses the SPARQL fragment
// `SELECT * WHERE { … }` with '.'-conjunction, OPTIONAL, UNION, groups,
// variables, IRIs and literals.
func ParseQuery(src string) (*Query, error) { return sparql.Parse(src) }

// MustParseQuery is ParseQuery that panics on error (for fixtures).
func MustParseQuery(src string) *Query { return sparql.MustParse(src) }

// Result is a set of solution mappings.
type Result = engine.Result

// Unbound marks positions outside dom(µ) in result rows.
const Unbound = engine.Unbound

// EngineKind selects the evaluation engine.
type EngineKind int

const (
	// HashJoin materializes triple patterns and hash-joins them in
	// cardinality order (in-memory-store style).
	HashJoin EngineKind = iota
	// IndexNL uses greedy cost-based join ordering with index
	// nested-loop extension (relational-store style).
	IndexNL
	// Reference is the executable denotational semantics — exponential,
	// only for tiny stores and testing.
	Reference
	// Volcano streams rows through an Open/Next/Close iterator tree over
	// a cost-based plan (join reordering, filter and LIMIT pushdown). The
	// session default, and the engine behind the incremental exec path.
	Volcano
)

func (k EngineKind) engine() engine.Engine {
	switch k {
	case HashJoin:
		return engine.NewHashJoin()
	case IndexNL:
		return engine.NewIndexNL()
	case Reference:
		return engine.NewReference()
	default:
		return engine.NewVolcano()
	}
}

// String returns the engine's report name.
func (k EngineKind) String() string { return k.engine().Name() }

// Evaluate computes the solution mappings of q over st under the formal
// set semantics.
//
// Deprecated: open a session and execute through it instead — Open(st,
// WithEngine(kind), WithPruning(false)), then db.Exec or
// Prepare/Exec(ctx) for cancellation and plan reuse. Evaluate runs one
// uncancellable evaluation on a throwaway session.
func Evaluate(st *Store, q *Query, kind EngineKind) (*Result, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	db, err := Open(st, WithEngine(kind), WithPruning(false))
	if err != nil {
		return nil, err
	}
	return db.Evaluate(context.Background(), st, q)
}

// Options configure the dual simulation solver (paper §3.3).
//
// Deprecated: sessions replace the flat option struct — configure Open
// with functional options (WithStrategy, WithWorkers, …), or import an
// existing Options value wholesale via WithOptions.
type Options struct {
	// Strategy selects the ×b evaluation: AutoStrategy (the popcount
	// heuristic), RowWiseStrategy or ColWiseStrategy.
	Strategy Strategy
	// DeclarationOrder disables the sparsest-first inequality ordering.
	DeclarationOrder bool
	// PlainInit disables the summary-vector initialization (13).
	PlainInit bool
	// Compressed solves on gap-length encoded matrices.
	Compressed bool
	// ShortCircuit stops as soon as the query is proven unsatisfiable.
	ShortCircuit bool
	// Workers > 1 parallelizes the bit-matrix multiplications over that
	// many goroutines.
	Workers int
}

// Strategy selects the bit-matrix multiplication strategy.
type Strategy int

const (
	// AutoStrategy picks row- or column-wise per evaluation by popcount.
	AutoStrategy Strategy = iota
	// RowWiseStrategy always unions matrix rows.
	RowWiseStrategy
	// ColWiseStrategy always probes candidate columns.
	ColWiseStrategy
)

func (o Options) config() core.Config {
	cfg := core.Config{
		PlainInit:    o.PlainInit,
		Compressed:   o.Compressed,
		ShortCircuit: o.ShortCircuit,
		Workers:      o.Workers,
	}
	switch o.Strategy {
	case RowWiseStrategy:
		cfg.Strategy = bitmat.RowWise
	case ColWiseStrategy:
		cfg.Strategy = bitmat.ColWise
	}
	if o.DeclarationOrder {
		cfg.Order = soi.DeclarationOrder
	}
	return cfg
}

// Stats reports solver effort. JSON tags are part of the serving wire
// format (see ExecStats).
//
//dualsim:wire
type Stats struct {
	// Rounds is the number of solver rounds ("iterations" in the paper).
	Rounds int `json:"rounds"`
	// Evaluations counts individual inequality evaluations.
	Evaluations int `json:"evaluations"`
	// Updates counts evaluations that shrank a variable.
	Updates int `json:"updates"`
}

// Relation is the largest dual simulation of a query: per original query
// variable, the set of candidate database nodes (unioned over UNION
// branches and optional copies).
type Relation struct {
	rel *core.QueryRelation
	st  *Store
}

// Candidates returns the node set for a query variable as decoded terms.
func (r *Relation) Candidates(varName string) []Term {
	set := r.rel.VarSet(varName)
	out := make([]Term, 0, set.Count())
	set.ForEach(func(i int) bool {
		out = append(out, r.st.Term(storage.NodeID(i)))
		return true
	})
	return out
}

// CandidateCount returns |χS(v)| for a query variable.
func (r *Relation) CandidateCount(varName string) int {
	return r.rel.VarSet(varName).Count()
}

// Empty reports whether the query is unsatisfiable (every UNION branch
// has an empty mandatory variable).
func (r *Relation) Empty() bool { return r.rel.Empty() }

// Stats returns aggregated solver statistics.
func (r *Relation) Stats() Stats {
	return Stats{
		Rounds:      r.rel.Stats.Rounds,
		Evaluations: r.rel.Stats.Evaluations,
		Updates:     r.rel.Stats.Updates,
	}
}

// DualSimulate computes the largest dual simulation between the query and
// the store (Sect. 3–4 of the paper): a sound overapproximation of the
// query's matches, per variable.
//
// Deprecated: use a session — Open(st, WithOptions(opts)) followed by
// db.DualSimulate(ctx, q) — for cancellation and configuration reuse.
func DualSimulate(st *Store, q *Query, opts Options) (*Relation, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	db, err := Open(st, WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return db.DualSimulate(context.Background(), q)
}

// errString guards exported wrappers against nil stores.
func requireStore(st *Store) error {
	if st == nil {
		return fmt.Errorf("dualsim: nil store")
	}
	return nil
}
