package dualsim_test

import (
	"context"
	"errors"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
)

// drainRows pulls every row off the cursor into a Result for set
// comparison against the materializing path.
func drainRows(t *testing.T, rows *dualsim.Rows) *dualsim.Result {
	t.Helper()
	out := &dualsim.Result{Vars: append([]string{}, rows.Vars()...)}
	for rows.Next() {
		out.Rows = append(out.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamMatchesExec: the cursor path delivers exactly the mapping
// set of the materializing Exec path, and its finalized stats carry the
// streaming executor's operator counters.
func TestStreamMatchesExec(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}

	want, _, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := drainRows(t, rows)
	if !got.Equal(want) {
		t.Fatalf("stream rows != exec rows: %d vs %d", got.Len(), want.Len())
	}

	stats := rows.Stats()
	if stats.Results != want.Len() {
		t.Fatalf("stats.Results = %d, want %d", stats.Results, want.Len())
	}
	if es := stats.Stage("evaluate"); es == nil || es.Out != want.Len() {
		t.Fatalf("evaluate stage = %+v, want Out %d", es, want.Len())
	}
	if ps := stats.Stage("prune"); ps == nil || ps.In != 20 || ps.Out != 4 {
		t.Fatalf("prune stage = %+v, want 20 -> 4", ps)
	}
	if len(stats.Operators) == 0 {
		t.Fatal("stats.Operators empty — streaming executor counters missing")
	}
	var sawScan bool
	var produced int64
	for _, op := range stats.Operators {
		if op.Op == "scan" || op.Op == "extend" {
			sawScan = true
		}
		produced += op.Rows
	}
	if !sawScan {
		t.Fatalf("no scan/extend operator in %+v", stats.Operators)
	}
	if produced == 0 {
		t.Fatal("operator row counters all zero after a non-empty stream")
	}
	if stats.Duration == 0 {
		t.Fatal("stats.Duration not finalized")
	}
}

// TestStreamEarlyClose: closing a cursor mid-stream finalizes stats at
// the rows delivered so far and is idempotent.
func TestStreamEarlyClose(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next after Close returned a row")
	}
	if stats := rows.Stats(); stats.Results != 1 {
		t.Fatalf("stats.Results = %d, want the 1 row pulled before Close", stats.Results)
	}
}

// TestStreamCancellation: a cancelled context surfaces through Err, not
// as a silent end of stream.
func TestStreamCancellation(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pq, err := db.Prepare(queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pq.Stream(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestStreamLimitPushdown: a LIMIT query streams exactly the window and
// the executor records the limit operator.
func TestStreamLimitPushdown(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pq, err := db.Prepare(`SELECT * WHERE { ?d <directed> ?m . } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := drainRows(t, rows)
	if got.Len() != 1 {
		t.Fatalf("rows = %d, want 1", got.Len())
	}
	var sawLimit bool
	for _, op := range rows.Stats().Operators {
		if op.Op == "limit" {
			sawLimit = true
		}
	}
	if !sawLimit {
		t.Fatalf("no limit operator in %+v", rows.Stats().Operators)
	}
}

// TestSnapshotQueryStream: the pinned streaming entry point reports plan
// cache traffic and answers from the pinned epoch.
func TestSnapshotQueryStream(t *testing.T) {
	st := fig1a(t)
	db, err := dualsim.Open(st, dualsim.WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snap := db.Snapshot()
	rows1, err := snap.QueryStream(context.Background(), queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := drainRows(t, rows1).Len()
	rows1.Close()
	if rows1.Stats().CacheHit {
		t.Fatal("first QueryStream reported a cache hit")
	}
	rows2, err := snap.QueryStream(context.Background(), queries.QueryX1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if n2 := drainRows(t, rows2).Len(); n2 != n1 {
		t.Fatalf("second stream %d rows, first %d", n2, n1)
	}
	if !rows2.Stats().CacheHit {
		t.Fatal("second QueryStream missed the plan cache")
	}
	if rows2.Stats().Epoch != snap.Epoch() {
		t.Fatalf("stream epoch %d, snapshot %d", rows2.Stats().Epoch, snap.Epoch())
	}
}
