package dualsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/delta"
	"dualsim/internal/engine"
	"dualsim/internal/partition"
	"dualsim/internal/persist"
	"dualsim/internal/prune"
	"dualsim/internal/stats"
	"dualsim/internal/trace"
)

// ErrClosed is returned by session operations after Close.
var ErrClosed = errors.New("dualsim: session is closed")

// dbSnapshot is one epoch of the session's graph database: an immutable
// store, its epoch number, and the fingerprint summary built for it (nil
// when the session has none). Snapshots are fully constructed before
// publication and never mutated after, so readers need no locking.
type dbSnapshot struct {
	st    *Store
	epoch uint64
	fp    *Fingerprint
}

// DB is a session over one graph database: a store plus a fixed
// configuration (engine, solver switches, pipeline composition) under
// which queries are prepared and executed, in the database/sql mould.
// A DB is safe for concurrent use by multiple goroutines.
//
// Open cost is paid once per session — notably the fingerprint summary
// when WithFingerprint is set — and Prepare cost once per query; Exec
// then runs only the per-execution pipeline (solve, prune, evaluate)
// and honours its context.
//
// The database is live: Apply mutates it by publishing a new
// epoch-numbered snapshot, with MVCC-lite read semantics — in-flight
// executions (and explicitly pinned Snapshot handles) finish against the
// epoch they started on, new calls see the new epoch, and the plan cache
// keys on the epoch so a stale plan can never serve a post-update query.
// See Apply, Snapshot and WithCompactionThreshold.
type DB struct {
	set     settings
	eng     engine.Engine
	cache   *planCache   // non-nil iff WithPlanCache was given
	wantFP  bool         // the pipeline composition consumes a fingerprint
	pers    *persist.Log // non-nil iff the session is durable (WithDataDir/OpenDir)
	overlay *delta.Overlay
	snap    atomic.Pointer[dbSnapshot] // current epoch; swapped by Apply/Compact

	applyMu   sync.Mutex   // serializes Apply/Compact (single writer)
	ckptFails atomic.Int64 // automatic checkpoints that failed (see PersistStats)
	// fpPart is the partition behind the current snapshot's fingerprint,
	// kept for incremental advance across applies. Guarded by applyMu
	// (written once more in Open, before any concurrency).
	fpPart *partition.Partition

	prepMu     sync.Mutex   // serializes planning (lazy matrix builds)
	planBuilds atomic.Int64 // number of query plans built on this session
	closed     atomic.Bool
}

// Open starts a session over the store. The store must be built (Add +
// Build, or any of the constructors); it is shared, not copied, and must
// not be mutated directly while the session is live — use Apply, which
// publishes immutable snapshots instead of touching the store.
//
// With WithDataDir the session is durable from epoch 0: Open writes an
// initial checkpoint into the (empty) data dir and every later Apply is
// WAL-logged before it is acknowledged. A dir that already holds a
// durable store is refused — restart from it with OpenDir instead.
func Open(st *Store, opts ...Option) (*DB, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	set, err := resolveSettings(opts)
	if err != nil {
		return nil, err
	}
	var lg *persist.Log
	if set.dataDir != "" {
		if persist.HasState(set.dataDir) {
			return nil, fmt.Errorf("dualsim: data dir %s already holds a durable store; warm-start from it with OpenDir", set.dataDir)
		}
		if lg, err = persist.Init(set.dataDir, st, 0); err != nil {
			return nil, fmt.Errorf("dualsim: initializing data dir: %w", err)
		}
	}
	db, err := openAt(st, 0, nil, lg, set)
	if err != nil && lg != nil {
		lg.Close()
	}
	return db, err
}

// OpenDir starts a session from a durable data directory written by a
// previous WithDataDir session: boot = load the latest snapshot +
// replay the WAL tail, preserving epoch continuity — no re-ingestion of
// the original RDF input. The recovered session keeps appending to the
// same directory.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("dualsim: empty data dir")
	}
	set, err := resolveSettings(opts)
	if err != nil {
		return nil, err
	}
	if set.dataDir != "" && set.dataDir != dir {
		return nil, fmt.Errorf("dualsim: OpenDir(%s) conflicts with WithDataDir(%s)", dir, set.dataDir)
	}
	set.dataDir = dir
	lg, rec, err := persist.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("dualsim: opening data dir: %w", err)
	}
	db, err := openAt(rec.Store, rec.SnapshotEpoch, rec.Tail, lg, set)
	if err != nil {
		lg.Close()
		return nil, err
	}
	return db, nil
}

// OpenAt starts a session over the store at a given epoch — the
// replication bootstrap entry point. A replica that decoded a primary
// snapshot stamped with epoch E opens its session here and then applies
// the primary's WAL records E+1, E+2, … through Apply, each landing on
// exactly its stamped epoch (Apply bumps by one, and the primary never
// logs empty deltas).
//
// Durability options are refused: a replica's store of record is its
// primary — on divergence or a WAL gap it re-bootstraps from a fresh
// snapshot instead of recovering local state.
func OpenAt(st *Store, epoch uint64, opts ...Option) (*DB, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	set, err := resolveSettings(opts)
	if err != nil {
		return nil, err
	}
	if set.dataDir != "" {
		return nil, fmt.Errorf("dualsim: OpenAt is for replicas, which re-bootstrap rather than recover; WithDataDir is not supported")
	}
	return openAt(st, epoch, nil, nil, set)
}

func resolveSettings(opts []Option) (settings, error) {
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return set, err
		}
	}
	return set, nil
}

// openAt wires a session over the store at the given epoch, replaying a
// recovered WAL tail first (both zero for a plain Open). Each replayed
// record must land exactly on its stamped epoch — a divergence means
// the log is missing or reordering records and the boot is refused
// rather than silently serving a wrong epoch.
func openAt(st *Store, epoch uint64, tail []persist.Record, lg *persist.Log, set settings) (*DB, error) {
	db := &DB{set: set, eng: set.engine.engine(), pers: lg}
	if set.planCache > 0 {
		db.cache = newPlanCache(set.planCache)
	}
	overlay, err := delta.NewAt(st, set.compactThreshold, epoch)
	if err != nil {
		return nil, fmt.Errorf("dualsim: %w", err)
	}
	for _, r := range tail {
		var res delta.Result
		switch r.Kind {
		case persist.RecordApply:
			_, res, err = overlay.Apply(delta.Delta{Adds: r.Adds, Dels: r.Dels})
		case persist.RecordCompact:
			_, res, err = overlay.Compact()
		default:
			err = fmt.Errorf("unknown WAL record kind %d", r.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("dualsim: replaying WAL record for epoch %d: %w", r.Epoch, err)
		}
		if res.Epoch != r.Epoch {
			return nil, fmt.Errorf("dualsim: WAL replay diverged: record stamped epoch %d, replay reached epoch %d (missing or reordered records)", r.Epoch, res.Epoch)
		}
	}
	db.overlay = overlay
	cur, curEpoch := overlay.Current()
	// The summary refinement is expensive; build it only when some
	// pipeline can consume it — the default pruning pipeline, or an
	// explicit stage list naming the fingerprint stage.
	needFP := set.pruning
	if set.stages != nil {
		needFP = hasStage(set.stages, "fingerprint")
	}
	db.wantFP = set.fingerprint && needFP
	snap := &dbSnapshot{st: cur, epoch: curEpoch}
	if db.wantFP {
		fp, err := BuildFingerprint(cur, set.fingerprintK)
		if err != nil {
			return nil, fmt.Errorf("dualsim: building fingerprint: %w", err)
		}
		snap.fp = fp
		db.fpPart = fp.sum.Part
	}
	db.snap.Store(snap)
	return db, nil
}

// Close releases the session. Prepared queries of a closed session fail
// with ErrClosed; the underlying store is untouched. On a durable
// session Close releases the WAL file handle — every acknowledged Apply
// was already fsync'd, so nothing is lost (checkpoint first via
// Checkpoint if you want the next boot to skip the replay).
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if db.pers != nil {
		return db.pers.Close()
	}
	return nil
}

// Store returns the session's current store snapshot. After an Apply it
// returns the new epoch's store; handles obtained earlier keep reading
// their own (immutable) snapshot.
func (db *DB) Store() *Store { return db.snap.Load().st }

// Epoch returns the current store epoch: 0 at Open, +1 per Apply or
// Compact.
func (db *DB) Epoch() uint64 { return db.snap.Load().epoch }

// EngineName returns the report name of the session's evaluation engine.
func (db *DB) EngineName() string { return db.eng.Name() }

// Fingerprint returns the current snapshot's fingerprint summary, or nil
// when the session was opened without WithFingerprint.
func (db *DB) Fingerprint() *Fingerprint { return db.snap.Load().fp }

// PlanBuilds returns how many query plans this session has built — one
// per Prepare call, never per Exec. Exposed so services (and tests) can
// assert that prepared queries reuse their plan.
func (db *DB) PlanBuilds() int64 { return db.planBuilds.Load() }

// stagesFor resolves the pipeline composition for one snapshot.
func (db *DB) stagesFor(snap *dbSnapshot) []Stage {
	if db.set.stages != nil {
		return db.set.stages
	}
	var out []Stage
	if db.set.pruning {
		// The fingerprint pre-filter only tightens the pruning solve; it
		// has no consumer in a pipeline that does not prune.
		if snap.fp != nil {
			out = append(out, FingerprintStage())
		}
		out = append(out, PruneStage())
	}
	return append(out, EvaluateStage())
}

// PrepareStats reports the one-time planning work of a Prepare call.
// JSON tags are part of the serving wire format (see ExecStats).
//
//dualsim:wire
type PrepareStats struct {
	// PlanTime is the total planning duration: parsing (when Prepare was
	// given source text), pattern extraction, SOI lowering with the
	// inequality-ordering keys, and the fingerprint lookup.
	PlanTime time.Duration `json:"planTime"`
	// ParseTime is the slice of PlanTime spent parsing the source text
	// (0 when the query arrived pre-parsed). Split out so the tracer's
	// parse/plan spans report honest per-phase costs.
	ParseTime time.Duration `json:"parseTime,omitempty"`
	// Branches is the number of union-free branches of the plan.
	Branches int `json:"branches"`
	// Variables and Inequalities size the systems of inequalities,
	// summed over branches.
	Variables    int `json:"variables"`
	Inequalities int `json:"inequalities"`
	// RestrictedVars counts the solver variables the fingerprint lookup
	// tightened (0 without WithFingerprint).
	RestrictedVars int `json:"restrictedVars,omitempty"`
}

// PreparedQuery is a query planned once against a session: parsed,
// translated to per-branch systems of inequalities (with their
// sparsest-first ordering keys), finalized for concurrent solving, and
// — when the session has a fingerprint — pre-filtered to summary-lifted
// candidate bounds. It is safe for concurrent use; every Exec runs the
// pipeline on private state.
//
// A PreparedQuery is pinned to the store epoch it was planned on: its
// executions keep answering from that (immutable) snapshot even after a
// later Apply. Callers serving live traffic should route text through
// Query/ExecBatch, whose epoch-keyed plan cache re-plans on the first
// request after an update.
type PreparedQuery struct {
	db         *DB
	snap       *dbSnapshot // pinned store + epoch + fingerprint
	q          *Query
	plan       *core.QueryPlan
	stages     []Stage
	restrict   [][]*bitvec.Vector // per branch, indexed like Branch.Vars; nil when nothing restricted
	fpTightest int                // smallest lifted candidate-set size (fingerprint stage's Out)
	fprint     stats.Fingerprint  // normalized statement identity, computed once at Prepare
	prep       PrepareStats
}

// Fingerprint returns the query's normalized statement fingerprint: the
// stable identity under which the serving layer aggregates workload
// statistics. Cosmetic variants of one statement — whitespace, literal
// values, variable names — share it; structural changes never do.
func (pq *PreparedQuery) Fingerprint() string { return pq.fprint.ID }

// Prepare parses the query source and plans it against the session's
// current snapshot. The returned PreparedQuery may be executed any
// number of times, concurrently; all parse and planning work happens
// here, exactly once.
func (db *DB) Prepare(src string) (*PreparedQuery, error) {
	start := time.Now()
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.prepareParsed(db.snap.Load(), q, start, time.Since(start))
}

// PrepareQuery plans an already-parsed query against the session's
// current snapshot.
func (db *DB) PrepareQuery(q *Query) (*PreparedQuery, error) {
	return db.prepare(db.snap.Load(), q, time.Now())
}

func (db *DB) prepare(snap *dbSnapshot, q *Query, start time.Time) (*PreparedQuery, error) {
	return db.prepareParsed(snap, q, start, 0)
}

// prepareParsed is prepare with the parse slice of the planning time
// already measured, so PrepareStats (and trace spans) can report parse
// and plan separately.
func (db *DB) prepareParsed(snap *dbSnapshot, q *Query, start time.Time, parse time.Duration) (*PreparedQuery, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	// Planning triggers the store's lazy per-predicate matrix builds and
	// (with a fingerprint) a solve on the summary store; serialize it so
	// concurrent Prepare calls stay race-free. Exec never takes this lock.
	db.prepMu.Lock()
	defer db.prepMu.Unlock()

	plan, err := core.BuildQueryPlan(snap.st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	plan.Finalize()

	pq := &PreparedQuery{db: db, snap: snap, q: q, plan: plan, stages: db.stagesFor(snap), fprint: stats.Of(q)}
	pq.prep.Branches = len(plan.Branches)
	for _, br := range plan.Branches {
		pq.prep.Variables += br.Sys.NumVars()
		pq.prep.Inequalities += br.Sys.NumIneqs()
	}

	if snap.fp != nil && hasStage(pq.stages, "fingerprint") {
		restrict := make([][]*bitvec.Vector, len(plan.Branches))
		tightest := snap.st.NumNodes()
		restricted := 0
		for i, br := range plan.Branches {
			restrict[i] = snap.fp.sum.LiftedVectors(snap.st, br.PatternGraph())
			for _, vec := range restrict[i] {
				if vec == nil {
					continue
				}
				restricted++
				if c := vec.Count(); c < tightest {
					tightest = c
				}
			}
		}
		if restricted > 0 {
			pq.restrict = restrict
			pq.fpTightest = tightest
			pq.prep.RestrictedVars = restricted
		}
	}

	pq.prep.PlanTime = time.Since(start)
	pq.prep.ParseTime = parse
	db.planBuilds.Add(1)
	return pq, nil
}

func hasStage(stages []Stage, name string) bool {
	for _, s := range stages {
		if s.name == name {
			return true
		}
	}
	return false
}

// Query returns the parsed query.
func (pq *PreparedQuery) Query() *Query { return pq.q }

// PrepareStats returns the one-time planning statistics.
func (pq *PreparedQuery) PrepareStats() PrepareStats { return pq.prep }

// Exec runs the session's pipeline for this query — fingerprint
// pre-filter, dual-simulation pruning and engine evaluation, as
// composed at Open — and returns the solution mappings with per-stage
// statistics. A nil ctx is treated as context.Background(). Exec
// honours cancellation and deadlines: the solver aborts between
// inequality evaluations and the engines between join row batches,
// returning ctx.Err().
func (pq *PreparedQuery) Exec(ctx context.Context) (*Result, *ExecStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq.db.closed.Load() {
		return nil, nil, ErrClosed
	}
	stats := &ExecStats{
		Epoch:         pq.snap.epoch,
		TriplesBefore: pq.snap.st.NumTriples(),
		TriplesAfter:  pq.snap.st.NumTriples(),
		Fingerprint:   pq.fprint.ID,
		StatementText: pq.fprint.Text,
	}
	x := &execState{pq: pq, stats: stats}
	// The solved relation's χ rows live in the plan's solver pool; once
	// the pipeline is done with them (the pruned store is materialized,
	// only scalar stats escape) they are recycled for the next Exec.
	defer x.releaseRelation()
	// parent is nil unless the request installed a trace span in ctx —
	// every trace call below is a nil-receiver no-op then, so the
	// untraced hot path stays allocation-free.
	parent := trace.SpanFromContext(ctx)
	start := time.Now()
	for _, stage := range pq.stages {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		ss := StageStats{Name: stage.name}
		sctx := ctx
		sp := parent.StartChild(stage.name)
		if sp != nil {
			sctx = trace.ContextWithSpan(ctx, sp)
		}
		s0 := time.Now()
		err := stage.run(sctx, x, &ss)
		ss.Duration = time.Since(s0)
		sp.End()
		if sp != nil {
			sp.Add("in", int64(ss.In))
			sp.Add("out", int64(ss.Out))
			if ss.Skipped {
				sp.SetAttr("skipped", "true")
			}
		}
		stats.Stages = append(stats.Stages, ss)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Duration = time.Since(start)
	return x.result, stats, nil
}

// recordPrepareSpans grafts parse/plan spans for this request's
// planning work under the context's trace span. A cache hit records a
// zero-length plan span tagged cached, so the trace still shows where
// the plan came from without inflating the request's apparent time.
func recordPrepareSpans(ctx context.Context, pq *PreparedQuery, cached bool) {
	if ctx == nil {
		return
	}
	sp := trace.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	if cached {
		pl := sp.Record("plan", 0)
		pl.SetAttr("cached", "true")
		return
	}
	if pq.prep.ParseTime > 0 {
		sp.Record("parse", pq.prep.ParseTime)
	}
	pl := sp.Record("plan", pq.prep.PlanTime-pq.prep.ParseTime)
	pl.Add("branches", int64(pq.prep.Branches))
	pl.Add("variables", int64(pq.prep.Variables))
	pl.Add("inequalities", int64(pq.prep.Inequalities))
}

// Exec is the one-shot convenience: Prepare + Exec. Prefer Prepare for
// repeated queries — it performs the planning work exactly once — or
// Query, which reuses plans through the session's cache.
func (db *DB) Exec(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, err := db.Prepare(src)
	if err != nil {
		return nil, nil, err
	}
	recordPrepareSpans(ctx, pq, false)
	return pq.Exec(ctx)
}

// Query is the one-shot serving entry point: it resolves src through the
// session's plan cache (WithPlanCache) and executes the pipeline. A
// cache hit skips parse, SOI lowering and fingerprint lifting entirely
// and is reported in ExecStats.CacheHit; a miss plans once and caches the
// prepared query for subsequent calls with the same (whitespace-
// normalized) text. Without a configured cache, Query degrades to Exec.
// Safe for concurrent use; concurrent misses of one text build its plan
// once.
//
// Cache keys carry the store epoch: the first Query after an Apply
// misses and re-plans on the new snapshot, so a cached plan can never
// answer from pre-update state.
func (db *DB) Query(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, hit, err := db.prepareCached(db.snap.Load(), src, false)
	if err != nil {
		return nil, nil, err
	}
	recordPrepareSpans(ctx, pq, hit)
	res, stats, err := pq.Exec(ctx)
	if stats != nil {
		stats.CacheHit = hit
	}
	return res, stats, err
}

// prepareSrc parses and plans query text against one snapshot.
func (db *DB) prepareSrc(snap *dbSnapshot, src string) (*PreparedQuery, error) {
	start := time.Now()
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.prepareParsed(snap, q, start, time.Since(start))
}

// prepareCached resolves query text to a prepared query for the given
// snapshot through the plan cache, reporting whether it was a hit. Keys
// combine the snapshot epoch with the normalized text, so plans of
// superseded epochs structurally miss. Cache misses for the same key are
// single-flighted: the plan is built once, concurrent callers block on
// buildMu and pick up the freshly inserted entry.
//
// pinned distinguishes deliberate reads of an old epoch (Snapshot
// handles) from live traffic: a live caller whose snapshot was
// superseded mid-build still executes its plan but does not insert it —
// a superseded entry could never be served to live queries and would
// only keep the old store pinned past Apply's dropStaleEpochs sweep.
func (db *DB) prepareCached(snap *dbSnapshot, src string, pinned bool) (*PreparedQuery, bool, error) {
	if db.cache == nil {
		pq, err := db.prepareSrc(snap, src)
		return pq, false, err
	}
	key := cacheKey(snap.epoch, normalizeQuery(src))
	if pq := db.cache.lookup(key, true); pq != nil {
		return pq, true, nil
	}
	db.cache.buildMu.Lock()
	defer db.cache.buildMu.Unlock()
	if pq := db.cache.lookup(key, false); pq != nil {
		// A concurrent caller built the plan while we waited: the recorded
		// miss was in fact served from the cache.
		db.cache.promoteMiss()
		return pq, true, nil
	}
	pq, err := db.prepareSrc(snap, src)
	if err != nil {
		return nil, false, err
	}
	db.cache.insert(key, pq, pinned)
	return pq, false, nil
}

// CacheStats reports the plan cache's size and hit/miss/eviction
// counters. Sessions opened without WithPlanCache report the zero value.
func (db *DB) CacheStats() PlanCacheStats {
	if db.cache == nil {
		return PlanCacheStats{}
	}
	return db.cache.stats()
}

// DualSimulate computes the largest dual simulation of q over the
// session's current snapshot, honouring ctx.
func (db *DB) DualSimulate(ctx context.Context, q *Query) (*Relation, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := db.snap.Load().st
	rel, err := core.QueryDualSimulationCtx(ctx, st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, st: st}, nil
}

// Prune computes the pruned database for q over the session's current
// snapshot, honouring ctx.
func (db *DB) Prune(ctx context.Context, q *Query) (*Pruning, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p, rel, err := prune.PruneQueryCtx(ctx, db.snap.Load().st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Pruning{p: p, rel: rel}, nil
}

// SimulatePattern computes the largest dual simulation between a
// hand-built pattern graph and the session's current snapshot, honouring
// ctx.
func (db *DB) SimulatePattern(ctx context.Context, p *Pattern) (*PatternRelation, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := db.snap.Load().st
	rel, err := core.DualSimulationCtx(ctx, st, p.p, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &PatternRelation{rel: rel, st: st}, nil
}

// Evaluate runs the session engine over an explicit store — normally a
// pruned store — honouring ctx. Exec composes this for you; Evaluate
// exists for callers orchestrating the stages by hand.
func (db *DB) Evaluate(ctx context.Context, st *Store, q *Query) (*Result, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := requireStore(st); err != nil {
		return nil, err
	}
	return db.eng.Evaluate(ctx, st, q)
}
