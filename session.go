package dualsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/prune"
)

// ErrClosed is returned by session operations after Close.
var ErrClosed = errors.New("dualsim: session is closed")

// DB is a session over one graph database: a store plus a fixed
// configuration (engine, solver switches, pipeline composition) under
// which queries are prepared and executed, in the database/sql mould.
// A DB is safe for concurrent use by multiple goroutines.
//
// Open cost is paid once per session — notably the fingerprint summary
// when WithFingerprint is set — and Prepare cost once per query; Exec
// then runs only the per-execution pipeline (solve, prune, evaluate)
// and honours its context.
type DB struct {
	st    *Store
	set   settings
	eng   engine.Engine
	fp    *Fingerprint // non-nil iff WithFingerprint was given
	cache *planCache   // non-nil iff WithPlanCache was given

	prepMu     sync.Mutex   // serializes planning (lazy matrix builds)
	planBuilds atomic.Int64 // number of query plans built on this session
	closed     atomic.Bool
}

// Open starts a session over the store. The store must be built (Add +
// Build, or any of the constructors); it is shared, not copied, and must
// not be mutated while the session is live.
func Open(st *Store, opts ...Option) (*DB, error) {
	if err := requireStore(st); err != nil {
		return nil, err
	}
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	db := &DB{st: st, set: set, eng: set.engine.engine()}
	if set.planCache > 0 {
		db.cache = newPlanCache(set.planCache)
	}
	// The summary refinement is expensive; build it only when some
	// pipeline can consume it — the default pruning pipeline, or an
	// explicit stage list naming the fingerprint stage.
	needFP := set.pruning
	if set.stages != nil {
		needFP = hasStage(set.stages, "fingerprint")
	}
	if set.fingerprint && needFP {
		fp, err := BuildFingerprint(st, set.fingerprintK)
		if err != nil {
			return nil, fmt.Errorf("dualsim: building fingerprint: %w", err)
		}
		db.fp = fp
	}
	return db, nil
}

// Close releases the session. Prepared queries of a closed session fail
// with ErrClosed; the underlying store is untouched.
func (db *DB) Close() error {
	db.closed.Store(true)
	return nil
}

// Store returns the session's store.
func (db *DB) Store() *Store { return db.st }

// EngineName returns the report name of the session's evaluation engine.
func (db *DB) EngineName() string { return db.eng.Name() }

// Fingerprint returns the session's fingerprint summary, or nil when the
// session was opened without WithFingerprint.
func (db *DB) Fingerprint() *Fingerprint { return db.fp }

// PlanBuilds returns how many query plans this session has built — one
// per Prepare call, never per Exec. Exposed so services (and tests) can
// assert that prepared queries reuse their plan.
func (db *DB) PlanBuilds() int64 { return db.planBuilds.Load() }

// stages resolves the session's pipeline composition.
func (db *DB) stages() []Stage {
	if db.set.stages != nil {
		return db.set.stages
	}
	var out []Stage
	if db.set.pruning {
		// The fingerprint pre-filter only tightens the pruning solve; it
		// has no consumer in a pipeline that does not prune.
		if db.fp != nil {
			out = append(out, FingerprintStage())
		}
		out = append(out, PruneStage())
	}
	return append(out, EvaluateStage())
}

// PrepareStats reports the one-time planning work of a Prepare call.
type PrepareStats struct {
	// PlanTime is the total planning duration: parsing (when Prepare was
	// given source text), pattern extraction, SOI lowering with the
	// inequality-ordering keys, and the fingerprint lookup.
	PlanTime time.Duration
	// Branches is the number of union-free branches of the plan.
	Branches int
	// Variables and Inequalities size the systems of inequalities,
	// summed over branches.
	Variables, Inequalities int
	// RestrictedVars counts the solver variables the fingerprint lookup
	// tightened (0 without WithFingerprint).
	RestrictedVars int
}

// PreparedQuery is a query planned once against a session: parsed,
// translated to per-branch systems of inequalities (with their
// sparsest-first ordering keys), finalized for concurrent solving, and
// — when the session has a fingerprint — pre-filtered to summary-lifted
// candidate bounds. It is safe for concurrent use; every Exec runs the
// pipeline on private state.
type PreparedQuery struct {
	db         *DB
	q          *Query
	plan       *core.QueryPlan
	stages     []Stage
	restrict   [][]*bitvec.Vector // per branch, indexed like Branch.Vars; nil when nothing restricted
	fpTightest int                // smallest lifted candidate-set size (fingerprint stage's Out)
	prep       PrepareStats
}

// Prepare parses the query source and plans it against the session
// store. The returned PreparedQuery may be executed any number of times,
// concurrently; all parse and planning work happens here, exactly once.
func (db *DB) Prepare(src string) (*PreparedQuery, error) {
	start := time.Now()
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.prepare(q, start)
}

// PrepareQuery plans an already-parsed query against the session store.
func (db *DB) PrepareQuery(q *Query) (*PreparedQuery, error) {
	return db.prepare(q, time.Now())
}

func (db *DB) prepare(q *Query, start time.Time) (*PreparedQuery, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	// Planning triggers the store's lazy per-predicate matrix builds and
	// (with a fingerprint) a solve on the summary store; serialize it so
	// concurrent Prepare calls stay race-free. Exec never takes this lock.
	db.prepMu.Lock()
	defer db.prepMu.Unlock()

	plan, err := core.BuildQueryPlan(db.st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	plan.Finalize()

	pq := &PreparedQuery{db: db, q: q, plan: plan, stages: db.stages()}
	pq.prep.Branches = len(plan.Branches)
	for _, br := range plan.Branches {
		pq.prep.Variables += br.Sys.NumVars()
		pq.prep.Inequalities += br.Sys.NumIneqs()
	}

	if db.fp != nil && hasStage(pq.stages, "fingerprint") {
		restrict := make([][]*bitvec.Vector, len(plan.Branches))
		tightest := db.st.NumNodes()
		restricted := 0
		for i, br := range plan.Branches {
			restrict[i] = db.fp.sum.LiftedVectors(db.st, br.PatternGraph())
			for _, vec := range restrict[i] {
				if vec == nil {
					continue
				}
				restricted++
				if c := vec.Count(); c < tightest {
					tightest = c
				}
			}
		}
		if restricted > 0 {
			pq.restrict = restrict
			pq.fpTightest = tightest
			pq.prep.RestrictedVars = restricted
		}
	}

	pq.prep.PlanTime = time.Since(start)
	db.planBuilds.Add(1)
	return pq, nil
}

func hasStage(stages []Stage, name string) bool {
	for _, s := range stages {
		if s.name == name {
			return true
		}
	}
	return false
}

// Query returns the parsed query.
func (pq *PreparedQuery) Query() *Query { return pq.q }

// PrepareStats returns the one-time planning statistics.
func (pq *PreparedQuery) PrepareStats() PrepareStats { return pq.prep }

// Exec runs the session's pipeline for this query — fingerprint
// pre-filter, dual-simulation pruning and engine evaluation, as
// composed at Open — and returns the solution mappings with per-stage
// statistics. A nil ctx is treated as context.Background(). Exec
// honours cancellation and deadlines: the solver aborts between
// inequality evaluations and the engines between join row batches,
// returning ctx.Err().
func (pq *PreparedQuery) Exec(ctx context.Context) (*Result, *ExecStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq.db.closed.Load() {
		return nil, nil, ErrClosed
	}
	stats := &ExecStats{
		TriplesBefore: pq.db.st.NumTriples(),
		TriplesAfter:  pq.db.st.NumTriples(),
	}
	x := &execState{pq: pq, stats: stats}
	// The solved relation's χ rows live in the plan's solver pool; once
	// the pipeline is done with them (the pruned store is materialized,
	// only scalar stats escape) they are recycled for the next Exec.
	defer x.releaseRelation()
	start := time.Now()
	for _, stage := range pq.stages {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		ss := StageStats{Name: stage.name}
		s0 := time.Now()
		err := stage.run(ctx, x, &ss)
		ss.Duration = time.Since(s0)
		stats.Stages = append(stats.Stages, ss)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Duration = time.Since(start)
	return x.result, stats, nil
}

// Exec is the one-shot convenience: Prepare + Exec. Prefer Prepare for
// repeated queries — it performs the planning work exactly once — or
// Query, which reuses plans through the session's cache.
func (db *DB) Exec(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, err := db.Prepare(src)
	if err != nil {
		return nil, nil, err
	}
	return pq.Exec(ctx)
}

// Query is the one-shot serving entry point: it resolves src through the
// session's plan cache (WithPlanCache) and executes the pipeline. A
// cache hit skips parse, SOI lowering and fingerprint lifting entirely
// and is reported in ExecStats.CacheHit; a miss plans once and caches the
// prepared query for subsequent calls with the same (whitespace-
// normalized) text. Without a configured cache, Query degrades to Exec.
// Safe for concurrent use; concurrent misses of one text build its plan
// once.
func (db *DB) Query(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, hit, err := db.prepareCached(src)
	if err != nil {
		return nil, nil, err
	}
	res, stats, err := pq.Exec(ctx)
	if stats != nil {
		stats.CacheHit = hit
	}
	return res, stats, err
}

// prepareCached resolves query text to a prepared query through the plan
// cache, reporting whether it was a hit. Cache misses for the same key
// are single-flighted: the plan is built once, concurrent callers block
// on buildMu and pick up the freshly inserted entry.
func (db *DB) prepareCached(src string) (*PreparedQuery, bool, error) {
	if db.cache == nil {
		pq, err := db.Prepare(src)
		return pq, false, err
	}
	key := normalizeQuery(src)
	if pq := db.cache.lookup(key, true); pq != nil {
		return pq, true, nil
	}
	db.cache.buildMu.Lock()
	defer db.cache.buildMu.Unlock()
	if pq := db.cache.lookup(key, false); pq != nil {
		// A concurrent caller built the plan while we waited: the recorded
		// miss was in fact served from the cache.
		db.cache.promoteMiss()
		return pq, true, nil
	}
	pq, err := db.Prepare(src)
	if err != nil {
		return nil, false, err
	}
	db.cache.insert(key, pq)
	return pq, false, nil
}

// CacheStats reports the plan cache's size and hit/miss/eviction
// counters. Sessions opened without WithPlanCache report the zero value.
func (db *DB) CacheStats() PlanCacheStats {
	if db.cache == nil {
		return PlanCacheStats{}
	}
	return db.cache.stats()
}

// DualSimulate computes the largest dual simulation of q over the
// session store, honouring ctx.
func (db *DB) DualSimulate(ctx context.Context, q *Query) (*Relation, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rel, err := core.QueryDualSimulationCtx(ctx, db.st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, st: db.st}, nil
}

// Prune computes the pruned database for q over the session store,
// honouring ctx.
func (db *DB) Prune(ctx context.Context, q *Query) (*Pruning, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p, rel, err := prune.PruneQueryCtx(ctx, db.st, q, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Pruning{p: p, rel: rel}, nil
}

// SimulatePattern computes the largest dual simulation between a
// hand-built pattern graph and the session store, honouring ctx.
func (db *DB) SimulatePattern(ctx context.Context, p *Pattern) (*PatternRelation, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rel, err := core.DualSimulationCtx(ctx, db.st, p.p, db.set.coreConfig())
	if err != nil {
		return nil, err
	}
	return &PatternRelation{rel: rel, st: db.st}, nil
}

// Evaluate runs the session engine over an explicit store — normally a
// pruned store — honouring ctx. Exec composes this for you; Evaluate
// exists for callers orchestrating the stages by hand.
func (db *DB) Evaluate(ctx context.Context, st *Store, q *Query) (*Result, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := requireStore(st); err != nil {
		return nil, err
	}
	return db.eng.Evaluate(ctx, st, q)
}
