package dualsim

import (
	"context"
	"fmt"
	"time"

	"dualsim/internal/delta"
	"dualsim/internal/partition"
	"dualsim/internal/storage"
)

// This file is the session surface of the live-update subsystem
// (internal/delta): Apply mutates the database by publishing a new
// epoch-numbered snapshot, Snapshot pins the current epoch for
// repeatable reads, Compact consolidates the overlay on demand.
//
// Consistency model (MVCC-lite, single writer): snapshots are immutable
// and swapped atomically. Every request — Exec, Query, each ExecBatch
// request — resolves a snapshot exactly once, at planning, and answers
// entirely from it; ExecStats.Epoch reports which. Applies are
// serialized; readers are never blocked and never observe a half-applied
// delta.

// Delta is one batch of mutations for Apply. Dels are applied before
// Adds: a triple occurring in both ends up present. Deleting an absent
// triple and re-adding a present one are no-ops.
type Delta struct {
	Adds, Dels []Triple
}

// ApplyStats reports one Apply or Compact. JSON tags are part of the
// serving wire format (see ExecStats).
type ApplyStats struct {
	// Epoch is the epoch of the newly published snapshot (or, for a
	// no-op Apply of an empty Delta, the unchanged current epoch).
	Epoch uint64 `json:"epoch"`
	// Added and Deleted count the effective triple changes, after no-op
	// elimination.
	Added   int `json:"added"`
	Deleted int `json:"deleted"`
	// OverlaySize is the overlay ledger size after the operation —
	// staged adds plus tombstoned deletes relative to the last
	// compacted base. Reaching WithCompactionThreshold resets it to 0.
	OverlaySize int `json:"overlaySize"`
	// Compacted reports that the store was rebuilt from scratch (the
	// threshold was crossed, or Compact was called).
	Compacted bool `json:"compacted,omitempty"`
	// NoOp reports that the delta was empty and nothing was published:
	// no epoch bump, no snapshot swap, no plan-cache invalidation.
	NoOp bool `json:"noOp,omitempty"`
	// TouchedPreds counts predicate indexes rebuilt incrementally and
	// NewTerms the dictionary growth (both 0 when Compacted).
	TouchedPreds int `json:"touchedPreds,omitempty"`
	NewTerms     int `json:"newTerms,omitempty"`
	// FingerprintRebuilt reports that the session's fingerprint summary
	// was maintained across the update: the partition is advanced
	// incrementally around the touched nodes (re-refined in full only
	// after a compaction), but condensing it back into a summary graph
	// re-scans the store — an O(|E_DB|) write amplification per Apply on
	// fingerprinted sessions.
	FingerprintRebuilt bool `json:"fingerprintRebuilt,omitempty"`
	// Duration is the end-to-end apply time, including index and
	// fingerprint maintenance and cache invalidation.
	Duration time.Duration `json:"duration"`
}

// Apply mutates the database: deletes d.Dels, then adds d.Adds, and
// publishes the result as the next epoch's snapshot. The call is atomic
// — an invalid triple fails the whole delta with nothing changed — and
// serialized with other Apply/Compact calls; readers are never blocked.
//
// In-flight executions and PreparedQuery/Snapshot handles keep answering
// from the epoch they pinned; new Exec/Query/ExecBatch calls see the new
// snapshot. Plans of superseded epochs are dropped from the plan cache
// (they could never be served anyway — cache keys carry the epoch).
// Index maintenance is incremental: only predicates the delta touches
// are re-indexed, and a session fingerprint is advanced around the
// touched nodes rather than re-refined — until the overlay crosses
// WithCompactionThreshold, when the whole store is consolidated.
//
// Applying an empty Delta is a no-op: no epoch bump, no snapshot swap,
// no plan-cache invalidation — ApplyStats.NoOp reports it.
func (db *DB) Apply(ctx context.Context, d Delta) (ApplyStats, error) {
	if db.closed.Load() {
		return ApplyStats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	start := time.Now()
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	st, res, err := db.overlay.Apply(delta.Delta{Adds: d.Adds, Dels: d.Dels})
	stats := ApplyStats{
		Epoch:        res.Epoch,
		Added:        res.Added,
		Deleted:      res.Deleted,
		OverlaySize:  res.OverlaySize,
		Compacted:    res.Compacted,
		NoOp:         res.NoOp,
		TouchedPreds: res.Patch.TouchedPreds,
		NewTerms:     res.Patch.NewTerms,
	}
	if err != nil {
		return stats, err
	}
	if res.NoOp {
		// Empty delta: nothing to publish — the current snapshot stays
		// live, cached plans stay valid, the fingerprint is untouched.
		stats.Duration = time.Since(start)
		return stats, nil
	}
	err = db.publish(st, res, &stats)
	stats.Duration = time.Since(start)
	return stats, err
}

// Compact consolidates the live store on demand: the current snapshot is
// rebuilt into a pristine store (fresh dictionary, reclaiming the space
// of tombstoned triples and dead terms), the overlay ledger resets, and
// the result is published as the next epoch. See
// WithCompactionThreshold for the automatic variant.
func (db *DB) Compact(ctx context.Context) (ApplyStats, error) {
	if db.closed.Load() {
		return ApplyStats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	start := time.Now()
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	st, res, err := db.overlay.Compact()
	stats := ApplyStats{Epoch: res.Epoch, Compacted: true}
	if err != nil {
		return stats, err
	}
	err = db.publish(st, res, &stats)
	stats.Duration = time.Since(start)
	return stats, err
}

// publish maintains the fingerprint across the update, swaps in the new
// snapshot and invalidates superseded plans. Called with applyMu held.
func (db *DB) publish(st *storage.Store, res delta.Result, stats *ApplyStats) error {
	snap := &dbSnapshot{st: st, epoch: res.Epoch}
	var fpErr error
	if db.wantFP {
		snap.fp, fpErr = db.maintainFingerprint(st, res)
		stats.FingerprintRebuilt = snap.fp != nil
	}
	db.snap.Store(snap)
	if db.cache != nil {
		db.cache.dropStaleEpochs(res.Epoch)
	}
	if fpErr != nil {
		// The snapshot is live and correct — the fingerprint is purely an
		// optimization — but the session degraded; surface it.
		return fmt.Errorf("dualsim: fingerprint maintenance: %w (snapshot %d published without pre-filter)", fpErr, res.Epoch)
	}
	return nil
}

// maintainFingerprint carries the session fingerprint across an update.
// Small incremental patches advance the previous epoch's partition
// around the touched nodes (sound for any partition — see
// partition.Advance), skipping the k refinement rounds; a compaction
// renumbers every node, so the partition is re-refined from scratch
// there, restoring full precision. Condensing the partition into the
// summary graph is not incremental: partition.Fingerprint re-scans the
// store, so fingerprinted sessions pay O(|E_DB|) per Apply.
func (db *DB) maintainFingerprint(st *storage.Store, res delta.Result) (*Fingerprint, error) {
	if res.Compacted || db.fpPart == nil {
		fp, err := BuildFingerprint(st, db.set.fingerprintK)
		if err != nil {
			return nil, err
		}
		db.fpPart = fp.sum.Part
		return fp, nil
	}
	part := partition.Advance(st, db.fpPart, res.Patch.TouchedNodes)
	sum, err := partition.Fingerprint(st, part)
	if err != nil {
		return nil, err
	}
	db.fpPart = part
	return &Fingerprint{sum: sum, st: st}, nil
}

// OverlaySize returns the live-update ledger size: staged adds plus
// tombstoned deletes relative to the last compacted base.
func (db *DB) OverlaySize() int { return db.overlay.Size() }

// Compactions returns how many times the session's store has been
// compacted (automatically or via Compact).
func (db *DB) Compactions() int { return db.overlay.Compactions() }

// Snapshot pins the session's current epoch for repeatable reads: every
// query through the returned handle answers from exactly this snapshot,
// regardless of later Apply calls. Snapshots are cheap (a pointer), safe
// for concurrent use, and need no release — dropping the handle releases
// the pin.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{db: db, snap: db.snap.Load()}
}

// Snapshot is a read view pinned to one store epoch. It shares the
// session's configuration, plan cache (keyed by its own epoch) and
// execution pools.
type Snapshot struct {
	db   *DB
	snap *dbSnapshot
}

// Epoch returns the pinned epoch.
func (s *Snapshot) Epoch() uint64 { return s.snap.epoch }

// Store returns the pinned store.
func (s *Snapshot) Store() *Store { return s.snap.st }

// Prepare plans a query against the pinned snapshot.
func (s *Snapshot) Prepare(src string) (*PreparedQuery, error) {
	start := time.Now()
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return s.db.prepare(s.snap, q, start)
}

// Exec is the one-shot pinned execution: Prepare + Exec on the pinned
// snapshot.
func (s *Snapshot) Exec(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, err := s.Prepare(src)
	if err != nil {
		return nil, nil, err
	}
	return pq.Exec(ctx)
}

// Query resolves src through the session's plan cache — scoped to the
// pinned epoch — and executes it on the pinned snapshot. Repeated pinned
// reads of one text plan once, like live ones.
func (s *Snapshot) Query(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, hit, err := s.db.prepareCached(s.snap, src, true)
	if err != nil {
		return nil, nil, err
	}
	res, stats, err := pq.Exec(ctx)
	if stats != nil {
		stats.CacheHit = hit
	}
	return res, stats, err
}
