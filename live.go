package dualsim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dualsim/internal/delta"
	"dualsim/internal/partition"
	"dualsim/internal/persist"
	"dualsim/internal/storage"
	"dualsim/internal/trace"
)

// ErrNotDurable is returned by Checkpoint on a session opened without a
// data dir (WithDataDir/OpenDir).
var ErrNotDurable = errors.New("dualsim: session has no data dir; open with WithDataDir or OpenDir")

// This file is the session surface of the live-update subsystem
// (internal/delta): Apply mutates the database by publishing a new
// epoch-numbered snapshot, Snapshot pins the current epoch for
// repeatable reads, Compact consolidates the overlay on demand.
//
// Consistency model (MVCC-lite, single writer): snapshots are immutable
// and swapped atomically. Every request — Exec, Query, each ExecBatch
// request — resolves a snapshot exactly once, at planning, and answers
// entirely from it; ExecStats.Epoch reports which. Applies are
// serialized; readers are never blocked and never observe a half-applied
// delta.

// Delta is one batch of mutations for Apply. Dels are applied before
// Adds: a triple occurring in both ends up present. Deleting an absent
// triple and re-adding a present one are no-ops.
type Delta struct {
	Adds, Dels []Triple
}

// ApplyStats reports one Apply or Compact. JSON tags are part of the
// serving wire format (see ExecStats).
//
//dualsim:wire
type ApplyStats struct {
	// Epoch is the epoch of the newly published snapshot (or, for a
	// no-op Apply of an empty Delta, the unchanged current epoch).
	Epoch uint64 `json:"epoch"`
	// Added and Deleted count the effective triple changes, after no-op
	// elimination.
	Added   int `json:"added"`
	Deleted int `json:"deleted"`
	// OverlaySize is the overlay ledger size after the operation —
	// staged adds plus tombstoned deletes relative to the last
	// compacted base. Reaching WithCompactionThreshold resets it to 0.
	OverlaySize int `json:"overlaySize"`
	// Compacted reports that the store was rebuilt from scratch (the
	// threshold was crossed, or Compact was called).
	Compacted bool `json:"compacted,omitempty"`
	// NoOp reports that the delta was empty and nothing was published:
	// no epoch bump, no snapshot swap, no plan-cache invalidation.
	NoOp bool `json:"noOp,omitempty"`
	// TouchedPreds counts predicate indexes rebuilt incrementally and
	// NewTerms the dictionary growth (both 0 when Compacted).
	TouchedPreds int `json:"touchedPreds,omitempty"`
	NewTerms     int `json:"newTerms,omitempty"`
	// WALBytes is the framed size of the write-ahead log record this
	// operation appended, and FsyncLatency the time the fsync making it
	// durable took — both 0 on a session without a data dir. The WAL
	// write happens before the delta is applied or acknowledged.
	WALBytes     int64         `json:"walBytes,omitempty"`
	FsyncLatency time.Duration `json:"fsyncLatency,omitempty"`
	// Checkpointed reports that the operation rolled the WAL into a
	// fresh snapshot afterwards (Compact always does on a durable
	// session; Apply does when WithCheckpointEvery triggered).
	Checkpointed bool `json:"checkpointed,omitempty"`
	// FingerprintRebuilt reports that the session's fingerprint summary
	// was maintained across the update: the partition is advanced
	// incrementally around the touched nodes (re-refined in full only
	// after a compaction), but condensing it back into a summary graph
	// re-scans the store — an O(|E_DB|) write amplification per Apply on
	// fingerprinted sessions.
	FingerprintRebuilt bool `json:"fingerprintRebuilt,omitempty"`
	// Duration is the end-to-end apply time, including index and
	// fingerprint maintenance and cache invalidation.
	Duration time.Duration `json:"duration"`
	// Trace is the operation's span tree when tracing was enabled on the
	// serving request: wal.append (fsync latency, framed bytes), patch
	// (index maintenance), publish (snapshot swap and fingerprint) and
	// checkpoint. Nil by default.
	Trace *trace.Span `json:"trace,omitempty"`
}

// Apply mutates the database: deletes d.Dels, then adds d.Adds, and
// publishes the result as the next epoch's snapshot. The call is atomic
// — an invalid triple fails the whole delta with nothing changed — and
// serialized with other Apply/Compact calls; readers are never blocked.
//
// In-flight executions and PreparedQuery/Snapshot handles keep answering
// from the epoch they pinned; new Exec/Query/ExecBatch calls see the new
// snapshot. Plans of superseded epochs are dropped from the plan cache
// (they could never be served anyway — cache keys carry the epoch).
// Index maintenance is incremental: only predicates the delta touches
// are re-indexed, and a session fingerprint is advanced around the
// touched nodes rather than re-refined — until the overlay crosses
// WithCompactionThreshold, when the whole store is consolidated.
//
// Applying an empty Delta is a no-op: no epoch bump, no snapshot swap,
// no plan-cache invalidation — ApplyStats.NoOp reports it.
func (db *DB) Apply(ctx context.Context, d Delta) (ApplyStats, error) {
	if db.closed.Load() {
		return ApplyStats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	sp := trace.SpanFromContext(ctx)
	start := time.Now()
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	// Durability comes first: the delta is validated (so the log never
	// holds a record the replay would reject) and WAL-appended with an
	// fsync before it is applied — an acknowledged Apply survives a
	// crash, an unacknowledged one is at worst a torn tail record that
	// recovery truncates away. Empty deltas are no-ops and are not
	// logged (they would not advance the epoch on replay either).
	var walStats persist.AppendStats
	if db.pers != nil && (len(d.Adds) > 0 || len(d.Dels) > 0) {
		// Pre-validate with the exact check the apply (and any later
		// replay) performs, so the WAL never records a rejectable batch.
		if err := storage.ValidateBatch(d.Adds, d.Dels); err != nil {
			return ApplyStats{Epoch: db.overlay.Epoch(), OverlaySize: db.overlay.Size()}, err
		}
		ws, err := db.pers.AppendApply(db.overlay.Epoch()+1, d.Adds, d.Dels)
		if err != nil {
			return ApplyStats{Epoch: db.overlay.Epoch(), OverlaySize: db.overlay.Size()},
				fmt.Errorf("dualsim: WAL append: %w", err)
		}
		walStats = ws
		sp.Record("wal.append", walStats.FsyncLatency).Add("walBytes", walStats.Bytes)
	}

	p0 := time.Now()
	st, res, err := db.overlay.Apply(delta.Delta{Adds: d.Adds, Dels: d.Dels})
	if ps := sp.Record("patch", time.Since(p0)); ps != nil {
		ps.Add("touchedPreds", int64(res.Patch.TouchedPreds))
		ps.Add("newTerms", int64(res.Patch.NewTerms))
	}
	stats := ApplyStats{
		Epoch:        res.Epoch,
		Added:        res.Added,
		Deleted:      res.Deleted,
		OverlaySize:  res.OverlaySize,
		Compacted:    res.Compacted,
		NoOp:         res.NoOp,
		TouchedPreds: res.Patch.TouchedPreds,
		NewTerms:     res.Patch.NewTerms,
		WALBytes:     walStats.Bytes,
		FsyncLatency: walStats.FsyncLatency,
	}
	if err != nil {
		return stats, err
	}
	if res.NoOp {
		// Empty delta: nothing to publish — the current snapshot stays
		// live, cached plans stay valid, the fingerprint is untouched.
		stats.Duration = time.Since(start)
		return stats, nil
	}
	pb0 := time.Now()
	err = db.publish(st, res, &stats)
	if fsp := sp.Record("publish", time.Since(pb0)); fsp != nil && stats.FingerprintRebuilt {
		fsp.SetAttr("fingerprint", "rebuilt")
	}
	if err == nil && db.pers != nil && db.set.checkpointEvery > 0 &&
		db.pers.RecordsSinceCheckpoint() >= int64(db.set.checkpointEvery) {
		// A checkpoint failure must not fail the Apply: the delta is
		// already WAL-acked, applied and published — durability holds,
		// recovery just replays a longer log. Count the degradation
		// (PersistStats.CheckpointFailures, a dualsimd gauge) instead of
		// turning a healthy write into a caller-visible error on every
		// subsequent Apply.
		c0 := time.Now()
		if _, cerr := db.pers.Checkpoint(st, res.Epoch); cerr != nil {
			db.ckptFails.Add(1)
		} else {
			stats.Checkpointed = true
			sp.Record("checkpoint", time.Since(c0))
		}
	}
	stats.Duration = time.Since(start)
	return stats, err
}

// Compact consolidates the live store on demand: the current snapshot is
// rebuilt into a pristine store (fresh dictionary, reclaiming the space
// of tombstoned triples and dead terms), the overlay ledger resets, and
// the result is published as the next epoch. See
// WithCompactionThreshold for the automatic variant.
func (db *DB) Compact(ctx context.Context) (ApplyStats, error) {
	if db.closed.Load() {
		return ApplyStats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	sp := trace.SpanFromContext(ctx)
	start := time.Now()
	db.applyMu.Lock()
	defer db.applyMu.Unlock()

	var walStats persist.AppendStats
	if db.pers != nil {
		ws, err := db.pers.AppendCompact(db.overlay.Epoch() + 1)
		if err != nil {
			return ApplyStats{Epoch: db.overlay.Epoch()}, fmt.Errorf("dualsim: WAL append: %w", err)
		}
		walStats = ws
		sp.Record("wal.append", walStats.FsyncLatency).Add("walBytes", walStats.Bytes)
	}
	p0 := time.Now()
	st, res, err := db.overlay.Compact()
	sp.Record("compact", time.Since(p0))
	stats := ApplyStats{
		Epoch:        res.Epoch,
		Compacted:    true,
		WALBytes:     walStats.Bytes,
		FsyncLatency: walStats.FsyncLatency,
	}
	if err != nil {
		return stats, err
	}
	pb0 := time.Now()
	err = db.publish(st, res, &stats)
	if fsp := sp.Record("publish", time.Since(pb0)); fsp != nil && stats.FingerprintRebuilt {
		fsp.SetAttr("fingerprint", "rebuilt")
	}
	if err == nil && db.pers != nil {
		// A compaction already rebuilt the whole store — the natural
		// moment to checkpoint: the fresh snapshot makes every WAL record
		// redundant, and the next boot loads it directly instead of
		// replaying the log and re-compacting. Like the auto-checkpoint in
		// Apply, a failure here is degradation, not an error: the compact
		// record is WAL-acked, so recovery replays it.
		c0 := time.Now()
		if _, cerr := db.pers.Checkpoint(st, res.Epoch); cerr != nil {
			db.ckptFails.Add(1)
		} else {
			stats.Checkpointed = true
			sp.Record("checkpoint", time.Since(c0))
		}
	}
	stats.Duration = time.Since(start)
	return stats, err
}

// CheckpointStats reports one Checkpoint. JSON tags are part of the
// serving wire format (see ExecStats).
//
//dualsim:wire
type CheckpointStats struct {
	// Epoch is the checkpointed store epoch.
	Epoch uint64 `json:"epoch"`
	// SnapshotBytes is the size of the written snapshot file.
	SnapshotBytes int64 `json:"snapshotBytes"`
	// WALReclaimed is how many write-ahead-log bytes the post-snapshot
	// truncation released.
	WALReclaimed int64 `json:"walReclaimed"`
	// Duration is the end-to-end checkpoint time.
	Duration time.Duration `json:"duration"`
}

// Checkpoint rolls the durable session's state forward on disk: the
// current snapshot is written as a checkpoint file (atomically: temp
// file, fsync, rename) and the write-ahead log is truncated — the next
// OpenDir boots from the snapshot with nothing to replay. Serialized
// with Apply/Compact; readers are never blocked. Returns ErrNotDurable
// on a session without a data dir.
func (db *DB) Checkpoint(ctx context.Context) (CheckpointStats, error) {
	if db.closed.Load() {
		return CheckpointStats{}, ErrClosed
	}
	if db.pers == nil {
		return CheckpointStats{}, ErrNotDurable
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return CheckpointStats{}, err
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	snap := db.snap.Load()
	cs, err := db.pers.Checkpoint(snap.st, snap.epoch)
	if err != nil {
		return CheckpointStats{}, err
	}
	return CheckpointStats{
		Epoch:         cs.Epoch,
		SnapshotBytes: cs.SnapshotBytes,
		WALReclaimed:  cs.WALReclaimed,
		Duration:      cs.Duration,
	}, nil
}

// Durable reports whether the session persists to a data dir.
func (db *DB) Durable() bool { return db.pers != nil }

// WALTail returns the durable session's WAL records with epochs beyond
// afterEpoch, in replay order, plus the last checkpoint epoch — the
// primary side of WAL-streaming replication (dualsimd's GET /v1/wal).
// Returns ErrNotDurable without a data dir, and persist.ErrEpochGap
// when a checkpoint already truncated the requested range (the caller
// must re-bootstrap from a snapshot instead of tailing).
func (db *DB) WALTail(afterEpoch uint64) ([]persist.Record, uint64, error) {
	if db.closed.Load() {
		return nil, 0, ErrClosed
	}
	if db.pers == nil {
		return nil, 0, ErrNotDurable
	}
	return db.pers.TailSince(afterEpoch)
}

// PersistStats is the durable session's cumulative persistence
// bookkeeping (zero value on a non-durable session). JSON tags follow
// the serving wire format.
//
//dualsim:wire
type PersistStats struct {
	Durable             bool   `json:"durable"`
	WALBytes            int64  `json:"walBytes"`
	WALRecords          int64  `json:"walRecords"`
	Checkpoints         int64  `json:"checkpoints"`
	LastCheckpointEpoch uint64 `json:"lastCheckpointEpoch"`
	SnapshotBytes       int64  `json:"snapshotBytes"`
	// CheckpointFailures counts automatic checkpoints (WithCheckpointEvery,
	// checkpoint-on-Compact) that failed. The writes they followed are
	// still durable — recovery just replays a longer WAL — but a growing
	// count means snapshots are not being written (e.g. disk full) and
	// recovery time is no longer bounded.
	CheckpointFailures int64 `json:"checkpointFailures"`
}

// PersistStats returns the session's persistence counters — WAL size
// and record count, completed checkpoints, the last checkpointed epoch
// and the snapshot file size. dualsimd exposes them as /metrics gauges.
func (db *DB) PersistStats() PersistStats {
	if db.pers == nil {
		return PersistStats{}
	}
	s := db.pers.Stats()
	return PersistStats{
		Durable:             true,
		WALBytes:            s.WALBytes,
		WALRecords:          s.WALRecords,
		Checkpoints:         s.Checkpoints,
		LastCheckpointEpoch: s.LastCheckpointEpoch,
		SnapshotBytes:       s.SnapshotBytes,
		CheckpointFailures:  db.ckptFails.Load(),
	}
}

// publish maintains the fingerprint across the update, swaps in the new
// snapshot and invalidates superseded plans. Called with applyMu held.
func (db *DB) publish(st *storage.Store, res delta.Result, stats *ApplyStats) error {
	snap := &dbSnapshot{st: st, epoch: res.Epoch}
	var fpErr error
	if db.wantFP {
		snap.fp, fpErr = db.maintainFingerprint(st, res)
		stats.FingerprintRebuilt = snap.fp != nil
	}
	db.snap.Store(snap)
	if db.cache != nil {
		db.cache.dropStaleEpochs(res.Epoch)
	}
	if fpErr != nil {
		// The snapshot is live and correct — the fingerprint is purely an
		// optimization — but the session degraded; surface it.
		return fmt.Errorf("dualsim: fingerprint maintenance: %w (snapshot %d published without pre-filter)", fpErr, res.Epoch)
	}
	return nil
}

// maintainFingerprint carries the session fingerprint across an update.
// Small incremental patches advance the previous epoch's partition
// around the touched nodes (sound for any partition — see
// partition.Advance), skipping the k refinement rounds; a compaction
// renumbers every node, so the partition is re-refined from scratch
// there, restoring full precision. Condensing the partition into the
// summary graph is not incremental: partition.Fingerprint re-scans the
// store, so fingerprinted sessions pay O(|E_DB|) per Apply.
func (db *DB) maintainFingerprint(st *storage.Store, res delta.Result) (*Fingerprint, error) {
	if res.Compacted || db.fpPart == nil {
		fp, err := BuildFingerprint(st, db.set.fingerprintK)
		if err != nil {
			return nil, err
		}
		db.fpPart = fp.sum.Part
		return fp, nil
	}
	part := partition.Advance(st, db.fpPart, res.Patch.TouchedNodes)
	sum, err := partition.Fingerprint(st, part)
	if err != nil {
		return nil, err
	}
	db.fpPart = part
	return &Fingerprint{sum: sum, st: st}, nil
}

// OverlaySize returns the live-update ledger size: staged adds plus
// tombstoned deletes relative to the last compacted base.
func (db *DB) OverlaySize() int { return db.overlay.Size() }

// Compactions returns how many times the session's store has been
// compacted (automatically or via Compact).
func (db *DB) Compactions() int { return db.overlay.Compactions() }

// Snapshot pins the session's current epoch for repeatable reads: every
// query through the returned handle answers from exactly this snapshot,
// regardless of later Apply calls. Snapshots are cheap (a pointer), safe
// for concurrent use, and need no release — dropping the handle releases
// the pin.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{db: db, snap: db.snap.Load()}
}

// Snapshot is a read view pinned to one store epoch. It shares the
// session's configuration, plan cache (keyed by its own epoch) and
// execution pools.
type Snapshot struct {
	db   *DB
	snap *dbSnapshot
}

// Epoch returns the pinned epoch.
func (s *Snapshot) Epoch() uint64 { return s.snap.epoch }

// Store returns the pinned store.
func (s *Snapshot) Store() *Store { return s.snap.st }

// Prepare plans a query against the pinned snapshot.
func (s *Snapshot) Prepare(src string) (*PreparedQuery, error) {
	start := time.Now()
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return s.db.prepare(s.snap, q, start)
}

// Exec is the one-shot pinned execution: Prepare + Exec on the pinned
// snapshot.
func (s *Snapshot) Exec(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, err := s.Prepare(src)
	if err != nil {
		return nil, nil, err
	}
	recordPrepareSpans(ctx, pq, false)
	return pq.Exec(ctx)
}

// Query resolves src through the session's plan cache — scoped to the
// pinned epoch — and executes it on the pinned snapshot. Repeated pinned
// reads of one text plan once, like live ones.
func (s *Snapshot) Query(ctx context.Context, src string) (*Result, *ExecStats, error) {
	pq, hit, err := s.db.prepareCached(s.snap, src, true)
	if err != nil {
		return nil, nil, err
	}
	recordPrepareSpans(ctx, pq, hit)
	res, stats, err := pq.Exec(ctx)
	if stats != nil {
		stats.CacheHit = hit
	}
	return res, stats, err
}

// QueryStream resolves src through the session's plan cache (scoped to
// the pinned epoch) and returns a streaming cursor over the pinned
// snapshot: pruning runs eagerly, rows are computed as the caller pulls
// them. The cache hit is reported in the cursor's Stats. The serving
// layer's NDJSON streams are built on this — the first row can be on
// the wire before the last one is computed.
func (s *Snapshot) QueryStream(ctx context.Context, src string) (*Rows, error) {
	pq, hit, err := s.db.prepareCached(s.snap, src, true)
	if err != nil {
		return nil, err
	}
	recordPrepareSpans(ctx, pq, hit)
	rows, err := pq.Stream(ctx)
	if err != nil {
		return nil, err
	}
	rows.stats.CacheHit = hit
	return rows, nil
}
