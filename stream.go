package dualsim

import (
	"context"
	"time"

	"dualsim/internal/engine"
	"dualsim/internal/plan"
	"dualsim/internal/storage"
	"dualsim/internal/trace"
)

// Rows is a streaming result cursor: the rows of one execution delivered
// one at a time, database/sql style, instead of materialized into a
// Result. The first row is available as soon as the iterator tree
// produces it — a serving layer can have it on the wire while the last
// row is still being computed.
//
// The contract follows database/sql.Rows: call Next until it returns
// false, then consult Err to distinguish exhaustion from failure, and
// Close when done (Close is idempotent and implied by exhaustion).
// A Rows is single-goroutine; concurrent executions each call Stream.
type Rows struct {
	ex    *engine.Exec
	st    *Store // decode dictionary of the pinned snapshot
	stats *ExecStats
	begin time.Time   // Stream entry, for the end-to-end duration
	eval  time.Time   // evaluate-stage start, for its StageStats
	in    int         // evaluate-stage input cardinality
	sp    *trace.Span // evaluate span of a traced stream; nil otherwise
	row   []storage.NodeID
	n     int
	err   error
	done  bool // root iterator exhausted; stats finalized
}

// Stream runs the pipeline's pre-evaluation stages (fingerprint
// pre-filter, dual-simulation pruning) eagerly and returns a cursor over
// the evaluation's rows, computed incrementally by the streaming Volcano
// executor. Stream always uses the Volcano iterator path, regardless of
// the session's WithEngine choice — it is the streaming counterpart of
// Exec, not a different engine's semantics (all engines agree on the
// result set).
//
// Stats is usable immediately for the epoch and the pre-evaluation
// stages; the evaluation stage's numbers and the operator counters
// finalize when the cursor is exhausted or closed.
func (pq *PreparedQuery) Stream(ctx context.Context) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq.db.closed.Load() {
		return nil, ErrClosed
	}
	stats := &ExecStats{
		Epoch:         pq.snap.epoch,
		TriplesBefore: pq.snap.st.NumTriples(),
		TriplesAfter:  pq.snap.st.NumTriples(),
		Fingerprint:   pq.fprint.ID,
		StatementText: pq.fprint.Text,
	}
	x := &execState{pq: pq, stats: stats}
	parent := trace.SpanFromContext(ctx)
	begin := time.Now()
	for _, stage := range pq.stages {
		if stage.name == "evaluate" {
			// Replaced by the cursor: the evaluation happens under the
			// caller's Next calls, not here.
			continue
		}
		if err := ctx.Err(); err != nil {
			x.releaseRelation()
			return nil, err
		}
		ss := StageStats{Name: stage.name}
		sctx := ctx
		sp := parent.StartChild(stage.name)
		if sp != nil {
			sctx = trace.ContextWithSpan(ctx, sp)
		}
		s0 := time.Now()
		err := stage.run(sctx, x, &ss)
		ss.Duration = time.Since(s0)
		sp.End()
		if sp != nil {
			sp.Add("in", int64(ss.In))
			sp.Add("out", int64(ss.Out))
			if ss.Skipped {
				sp.SetAttr("skipped", "true")
			}
		}
		stats.Stages = append(stats.Stages, ss)
		if err != nil {
			x.releaseRelation()
			return nil, err
		}
	}
	// The pruned store is materialized; the solver's χ rows can go back
	// to the pool before the caller starts iterating.
	x.releaseRelation()
	target := x.target
	if target == nil {
		target = pq.snap.st
	}
	ex, err := engine.Compile(target, pq.q, plan.Options{})
	if err != nil {
		return nil, err
	}
	if n := pq.db.set.maxQueryMemory; n > 0 {
		ex.SetMaxMemory(n)
	}
	if parent != nil {
		// A traced stream pays for per-operator clocks, like Exec.
		ex.EnableTiming()
	}
	stats.PlanDecisions = ex.Decisions()
	if err := ex.Open(ctx); err != nil {
		ex.Close()
		return nil, err
	}
	return &Rows{
		ex:    ex,
		st:    pq.snap.st,
		stats: stats,
		begin: begin,
		eval:  time.Now(),
		in:    target.NumTriples(),
		sp:    parent.StartChild("evaluate"),
	}, nil
}

// Vars returns the result columns, in row order.
func (r *Rows) Vars() []string { return r.ex.Vars() }

// Next advances to the next row, reporting whether one is available.
// After false, Err distinguishes exhaustion (nil) from failure.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	row, ok, err := r.ex.Next()
	if err != nil {
		r.err = err
		r.finish()
		return false
	}
	if !ok {
		r.finish()
		return false
	}
	r.row = row
	r.n++
	return true
}

// Row returns the current row: positional over Vars, Unbound for
// positions outside dom(µ), same encoding as Result.Rows. The slice is
// owned by the caller and not reused by the cursor.
func (r *Rows) Row() []storage.NodeID { return r.row }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. Idempotent; safe after exhaustion.
func (r *Rows) Close() error {
	err := r.ex.Close()
	if !r.done {
		r.finish()
	}
	if r.err == nil && err != nil {
		r.err = err
	}
	return err
}

// Stats returns the execution's statistics. Before exhaustion the
// evaluation stage is absent and the operator counters reflect rows
// produced so far; after exhaustion (or Close) everything is final.
func (r *Rows) Stats() *ExecStats {
	if !r.done {
		r.stats.Operators = r.ex.Operators()
		r.stats.Results = r.n
	}
	return r.stats
}

// finish seals the stats: the evaluation StageStats, the operator
// counters and the end-to-end duration.
func (r *Rows) finish() {
	r.done = true
	r.row = nil
	r.stats.Stages = append(r.stats.Stages, StageStats{
		Name:     "evaluate",
		Duration: time.Since(r.eval),
		In:       r.in,
		Out:      r.n,
	})
	r.stats.Results = r.n
	r.stats.Operators = r.ex.Operators()
	res := r.ex.Resources()
	r.stats.Resources = &res
	r.stats.Duration = time.Since(r.begin)
	r.sp.End()
	if r.sp != nil {
		r.sp.Add("in", int64(r.in))
		r.sp.Add("out", int64(r.n))
		attachOperatorSpans(r.sp, r.stats.Operators)
		r.sp = nil
	}
}
