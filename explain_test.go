package dualsim_test

import (
	"context"
	"strings"
	"testing"

	"dualsim"
	"dualsim/internal/queries"
	"dualsim/internal/trace"
)

func openFig1a(t *testing.T, opts ...dualsim.Option) *dualsim.DB {
	t.Helper()
	st, err := dualsim.FromTriples(queries.Fig1aTriples())
	if err != nil {
		t.Fatal(err)
	}
	db, err := dualsim.Open(st, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const explainSrc = `SELECT * WHERE { ?d <directed> ?m . ?m <genre> ?g . }`

// EXPLAIN must be deterministic: the same query against the same epoch
// renders the same text, whether the plan came fresh or from the cache.
func TestExplainDeterministic(t *testing.T) {
	db := openFig1a(t, dualsim.WithPlanCache(8))
	ctx := context.Background()

	first, err := db.Explain(ctx, explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Analyzed {
		t.Fatalf("plain EXPLAIN claims analyzed")
	}
	if len(first.Operators) == 0 {
		t.Fatalf("EXPLAIN reported no operators")
	}
	text := first.Text()
	if !strings.Contains(text, "-- epoch 0") {
		t.Errorf("render misses the epoch header:\n%s", text)
	}
	if strings.Contains(text, "[rows=") {
		t.Errorf("plain EXPLAIN rendered executed counters:\n%s", text)
	}

	// Execute once so the second explain resolves a cached plan.
	if _, _, err := db.Query(ctx, explainSrc); err != nil {
		t.Fatal(err)
	}
	second, err := db.Explain(ctx, explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Text(); got != text {
		t.Errorf("cached-plan explain differs:\nfirst:\n%s\nsecond:\n%s", text, got)
	}
}

// EXPLAIN ANALYZE reports the executed plan: its operator rows are the
// execution's counters, and its stats carry the span tree.
func TestExplainAnalyzeMatchesExecution(t *testing.T) {
	db := openFig1a(t)
	ctx := context.Background()

	ex, err := db.ExplainAnalyze(ctx, explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Analyzed || ex.Stats == nil {
		t.Fatalf("ExplainAnalyze: Analyzed=%v Stats=%v", ex.Analyzed, ex.Stats)
	}
	if len(ex.Operators) != len(ex.Stats.Operators) {
		t.Fatalf("operator lists diverge: %d vs %d", len(ex.Operators), len(ex.Stats.Operators))
	}
	// A plain re-execution of the same query must reproduce the analyzed
	// row counts — they are real counters, not estimates.
	res, stats, err := db.Query(ctx, explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Operators) != len(ex.Operators) {
		t.Fatalf("re-execution has %d operators, analyze had %d", len(stats.Operators), len(ex.Operators))
	}
	for i, op := range ex.Operators {
		if got := stats.Operators[i]; got.Op != op.Op || got.Rows != op.Rows {
			t.Errorf("operator %d: analyze %s rows=%d, execution %s rows=%d",
				i, op.Op, op.Rows, got.Op, got.Rows)
		}
	}
	if ex.Stats.Results != len(res.Rows) {
		t.Errorf("analyze results %d, execution rows %d", ex.Stats.Results, len(res.Rows))
	}
	if sp := ex.Stats.Trace; sp == nil || sp.Find("evaluate") == nil {
		t.Errorf("analyze stats carry no evaluate span: %+v", ex.Stats.Trace)
	}
	if !strings.Contains(ex.Text(), "[rows=") {
		t.Errorf("analyzed render misses executed counters:\n%s", ex.Text())
	}
}

// A traced execution hangs parse/plan, pipeline-stage and per-operator
// spans under the caller's span; an untraced one leaves no residue.
func TestExecSpanTree(t *testing.T) {
	db := openFig1a(t, dualsim.WithPlanCache(8))
	ctx := context.Background()

	tr := trace.New("query")
	tctx := trace.ContextWithSpan(ctx, tr.Root())
	if _, _, err := db.Query(tctx, explainSrc); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	for _, name := range []string{"parse", "plan", "prune", "evaluate"} {
		if root.Find(name) == nil {
			t.Errorf("traced exec misses span %q", name)
		}
	}
	ev := root.Find("evaluate")
	if len(ev.Children) == 0 {
		t.Errorf("evaluate span has no operator children")
	}
	if ev.Counters["out"] == 0 {
		t.Errorf("evaluate span reports no output rows: %+v", ev.Counters)
	}

	// Second run hits the plan cache: the plan span must say so.
	tr2 := trace.New("query")
	if _, _, err := db.Query(trace.ContextWithSpan(ctx, tr2.Root()), explainSrc); err != nil {
		t.Fatal(err)
	}
	if pl := tr2.Root().Find("plan"); pl == nil || pl.Attrs["cached"] != "true" {
		t.Errorf("cached-plan span = %+v", pl)
	}

	// Untraced: no trace in the stats, no per-operator timing.
	_, stats, err := db.Query(ctx, explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Errorf("untraced exec produced a trace")
	}
	// NextCalls is a plain counter and always on; the per-operator clock
	// is the costly part and must stay off without a span.
	for _, op := range stats.Operators {
		if op.Time != 0 {
			t.Errorf("untraced exec timed operator %s: %+v", op.Op, op)
		}
	}
}
