// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sect. 5). One benchmark family per table:
//
//	BenchmarkTable2…     SOI vs. Ma et al. vs. HHK per B query
//	BenchmarkTable3…     pruning (SOI + mask construction) per query
//	BenchmarkTable4…     hash-join engine, full vs. pruned, per query
//	BenchmarkTable5…     index-NL engine, full vs. pruned, per query
//	BenchmarkFig6…       the L0/L1 mandatory cores (§5.3 convergence)
//	BenchmarkAblation…   §3.3 strategy/ordering/encoding/init switches
//
// Absolute numbers are laptop-scale; the paper-vs-measured comparison
// lives in EXPERIMENTS.md. Run `go run ./cmd/benchtables` for the
// table-formatted view.
package dualsim_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"dualsim"
	"dualsim/internal/baseline"
	"dualsim/internal/bench"
	"dualsim/internal/bitmat"
	"dualsim/internal/bitvec"
	"dualsim/internal/core"
	"dualsim/internal/engine"
	"dualsim/internal/prune"
	"dualsim/internal/queries"
	"dualsim/internal/soi"
	"dualsim/internal/sparql"
	"dualsim/internal/storage"
)

var (
	benchOnce sync.Once
	benchData *bench.Datasets
)

// datasets are built once and shared; scale chosen so the full -bench=.
// sweep stays in the minutes range (L1's full-store hash join is the
// pacing item: its intermediate results explode super-linearly with the
// university count — the very effect Table 4 measures).
func datasets(b *testing.B) *bench.Datasets {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchData, err = bench.Setup(2, 1, 42)
		if err != nil {
			panic(err)
		}
	})
	return benchData
}

func storeFor(b *testing.B, spec queries.Spec) *storage.Store {
	return datasets(b).StoreFor(spec)
}

// ---------------------------------------------------------------------------
// Table 2: dual simulation algorithms on OPTIONAL-stripped B queries.

func BenchmarkTable2SOI(b *testing.B) {
	for _, spec := range queries.BenchmarkQueries() {
		st := storeFor(b, spec)
		pat, err := bench.StripOptionalQuery(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DualSimulation(st, pat, core.Config{})
			}
		})
	}
}

func BenchmarkTable2MaEtAl(b *testing.B) {
	for _, spec := range queries.BenchmarkQueries() {
		st := storeFor(b, spec)
		pat, err := bench.StripOptionalQuery(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.MaEtAl(st, pat)
			}
		})
	}
}

func BenchmarkTable2HHK(b *testing.B) {
	for _, spec := range queries.BenchmarkQueries() {
		st := storeFor(b, spec)
		pat, err := bench.StripOptionalQuery(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.HHK(st, pat)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 3: SPARQLSIM pruning time per query (the t_SPARQLSIM column).

func BenchmarkTable3Pruning(b *testing.B) {
	for _, spec := range queries.All() {
		st := storeFor(b, spec)
		q := spec.Query()
		b.Run(spec.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := prune.PruneQuery(st, q, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Tables 4 and 5: evaluation on full vs. pruned stores.

func benchmarkEngineTable(b *testing.B, eng engine.Engine) {
	for _, spec := range queries.All() {
		st := storeFor(b, spec)
		q := spec.Query()
		p, _, err := prune.PruneQuery(st, q, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		pruned := p.Store()
		b.Run(spec.ID+"/full", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(context.Background(), st, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(spec.ID+"/pruned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(context.Background(), pruned, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4HashJoin(b *testing.B) {
	benchmarkEngineTable(b, engine.NewHashJoin())
}

func BenchmarkTable5IndexNL(b *testing.B) {
	benchmarkEngineTable(b, engine.NewIndexNL())
}

// ---------------------------------------------------------------------------
// Fig. 6 / §5.3: the mandatory cores of L0 and L1.

func BenchmarkFig6Cores(b *testing.B) {
	for _, id := range []string{"L0", "L1"} {
		spec, err := queries.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		st := storeFor(b, spec)
		pat, err := queries.ToPattern(queries.MandatoryCore(spec.Query().Expr))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				rel := core.DualSimulation(st, pat, core.Config{})
				rounds = rel.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (§3.3 and §5.1).

// ablationSpecs picks one query per convergence class.
func ablationSpecs(b *testing.B) []queries.Spec {
	var out []queries.Spec
	for _, id := range []string{"L0", "L1", "L2", "B14", "B17"} {
		s, err := queries.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func BenchmarkAblationStrategy(b *testing.B) {
	strategies := map[string]bitmat.Strategy{
		"auto": bitmat.Auto, "rowwise": bitmat.RowWise, "colwise": bitmat.ColWise,
	}
	for _, spec := range ablationSpecs(b) {
		st := storeFor(b, spec)
		q := spec.Query()
		for name, strat := range strategies {
			b.Run(spec.ID+"/"+name, func(b *testing.B) {
				cfg := core.Config{Strategy: strat}
				for i := 0; i < b.N; i++ {
					if _, err := core.QueryDualSimulation(st, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationOrdering(b *testing.B) {
	orders := map[string]soi.Order{
		"sparsest-first": soi.SparsestFirst, "declaration": soi.DeclarationOrder,
	}
	for _, spec := range ablationSpecs(b) {
		st := storeFor(b, spec)
		q := spec.Query()
		for name, ord := range orders {
			b.Run(spec.ID+"/"+name, func(b *testing.B) {
				cfg := core.Config{Order: ord}
				for i := 0; i < b.N; i++ {
					if _, err := core.QueryDualSimulation(st, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationInit(b *testing.B) {
	for _, spec := range ablationSpecs(b) {
		st := storeFor(b, spec)
		q := spec.Query()
		for name, plain := range map[string]bool{"summary13": false, "plain12": true} {
			b.Run(spec.ID+"/"+name, func(b *testing.B) {
				cfg := core.Config{PlainInit: plain}
				for i := 0; i < b.N; i++ {
					if _, err := core.QueryDualSimulation(st, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationParallel(b *testing.B) {
	for _, spec := range ablationSpecs(b) {
		st := storeFor(b, spec)
		q := spec.Query()
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", spec.ID, workers), func(b *testing.B) {
				cfg := core.Config{Workers: workers}
				for i := 0; i < b.N; i++ {
					if _, err := core.QueryDualSimulation(st, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationEncoding(b *testing.B) {
	for _, spec := range ablationSpecs(b) {
		st := storeFor(b, spec)
		q := spec.Query()
		for name, compressed := range map[string]bool{"csr": false, "compressed": true} {
			b.Run(spec.ID+"/"+name, func(b *testing.B) {
				cfg := core.Config{Compressed: compressed}
				for i := 0; i < b.N; i++ {
					if _, err := core.QueryDualSimulation(st, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the ×b kernels (§3.2 engineering).

func BenchmarkMicroMultiply(b *testing.B) {
	d := datasets(b)
	st := d.LUBM
	pid, ok := st.PredIDOf("ub:takesCourse")
	if !ok {
		b.Fatal("ub:takesCourse missing")
	}
	mats := st.Matrices(pid)
	n := st.NumNodes()
	x := bitvec.NewFull(n)
	cand := bitvec.NewFull(n)
	dst := bitvec.New(n)
	for name, strat := range map[string]bitmat.Strategy{
		"rowwise": bitmat.RowWise, "colwise": bitmat.ColWise,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mats.Multiply(bitmat.Forward, x, cand, dst, strat)
			}
		})
	}
}

func BenchmarkMicroBitvecAnd(b *testing.B) {
	x := bitvec.NewFull(1 << 16)
	y := bitvec.New(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.And(y)
	}
}

// ---------------------------------------------------------------------------
// Throughput layer: plan cache + batched execution + pooled solver state.

// BenchmarkQueryCached contrasts the serving paths for a repeated query:
// "replan" pays parse + SOI lowering + finalization on every call (the
// pre-cache behavior), "cached" hits the session's plan cache and runs
// only the execution pipeline on pooled solver state. allocs/op is the
// headline: the cache-hit path allocates no new PreparedQuery and the
// solver reuses its χ/scratch workspace.
func BenchmarkQueryCached(b *testing.B) {
	// L0: a query whose planning cost is a sizable share of the total
	// (sub-100µs execution), so the cache's effect is visible in ns/op
	// and not drowned by the join engine.
	spec, err := queries.ByID("L0")
	if err != nil {
		b.Fatal(err)
	}
	st := storeFor(b, spec)
	b.Run("replan", func(b *testing.B) {
		db, err := dualsim.Open(st)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := db.Exec(context.Background(), spec.Text); err != nil {
			b.Fatal(err) // warm the lazy matrices outside the timed loop
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec(context.Background(), spec.Text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		db, err := dualsim.Open(st, dualsim.WithPlanCache(4))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := db.Query(context.Background(), spec.Text); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Query(context.Background(), spec.Text); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if db.PlanBuilds() != 1 {
			b.Fatalf("cache-hit path rebuilt plans: %d builds", db.PlanBuilds())
		}
	})
}

// BenchmarkExecBatch measures batched concurrent execution through the
// shared plan cache at several pool widths.
func BenchmarkExecBatch(b *testing.B) {
	var reqs []dualsim.BatchRequest
	var st *storage.Store
	for _, id := range []string{"L2", "L4", "L2", "L5", "L2", "L4", "L5", "L2"} {
		spec, err := queries.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		st = storeFor(b, spec) // all L queries share the LUBM store
		reqs = append(reqs, dualsim.BatchRequest{Src: spec.Text})
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			db, err := dualsim.Open(st, dualsim.WithPlanCache(8), dualsim.WithBatchWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.ExecBatch(context.Background(), reqs); err != nil {
				b.Fatal(err) // warm cache and pools outside the timed loop
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.ExecBatch(context.Background(), reqs)
				if err != nil {
					b.Fatal(err)
				}
				for j := range out {
					if out[j].Err != nil {
						b.Fatal(out[j].Err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Serving layer: the dualsimd loopback hot path.

// BenchmarkServeQuery measures the end-to-end network serving path: a
// real HTTP server (internal/server) on 127.0.0.1 and the typed Go
// client, per-op = serialize + loopback round-trip + plan-cache hit +
// execute + decode. "buffered" returns one JSON envelope, "streamed"
// decodes the NDJSON row stream. p50-latency and the plan-cache hit
// rate are reported as benchmark metrics — the serving numbers the
// bench.Serving table tracks across PRs.
func BenchmarkServeQuery(b *testing.B) {
	spec, err := queries.ByID("L0")
	if err != nil {
		b.Fatal(err)
	}
	st := storeFor(b, spec)
	for _, mode := range []string{"buffered", "streamed"} {
		b.Run(mode, func(b *testing.B) {
			db, err := dualsim.Open(st, dualsim.WithPlanCache(8))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			cl, shutdown, err := bench.Loopback(db)
			if err != nil {
				b.Fatal(err)
			}
			defer shutdown()
			ctx := context.Background()
			if _, err := cl.Query(ctx, spec.Text); err != nil {
				b.Fatal(err) // warm matrices and the plan cache untimed
			}
			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if mode == "buffered" {
					if _, err := cl.Query(ctx, spec.Text); err != nil {
						b.Fatal(err)
					}
				} else {
					s, err := cl.QueryStream(ctx, spec.Text)
					if err != nil {
						b.Fatal(err)
					}
					for s.Next() {
					}
					if err := s.Err(); err != nil {
						b.Fatal(err)
					}
					s.Close()
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(bench.Quantile(lat, 0.50)), "p50-ns")
			b.ReportMetric(db.CacheStats().HitRate(), "hit-rate")
		})
	}
}

// BenchmarkQueryParse measures the parser on the whole workload.
func BenchmarkQueryParse(b *testing.B) {
	specs := queries.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := sparql.Parse(s.Text); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Live-update layer: delta overlay + epoch snapshots.

// BenchmarkApply measures a small steady-state Apply (one add + one
// delete on a dedicated predicate): ledger staging, per-predicate
// incremental re-index, snapshot swap and cache invalidation.
func BenchmarkApply(b *testing.B) {
	spec, err := queries.ByID("L0")
	if err != nil {
		b.Fatal(err)
	}
	db, err := dualsim.Open(storeFor(b, spec), dualsim.WithPlanCache(4))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.Apply(ctx, dualsim.Delta{
		Adds: []dualsim.Triple{dualsim.T("upd:s0", "upd:edge", "upd:o0")},
	}); err != nil {
		b.Fatal(err) // intern the update predicate outside the timed loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := db.Apply(ctx, dualsim.Delta{
			Adds: []dualsim.Triple{dualsim.T(fmt.Sprintf("upd:s%d", i+1), "upd:edge", fmt.Sprintf("upd:o%d", i+1))},
			Dels: []dualsim.Triple{dualsim.T(fmt.Sprintf("upd:s%d", i), "upd:edge", fmt.Sprintf("upd:o%d", i))},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAfterApply measures the post-update serving cost: every
// iteration applies a delta and then queries, so each Query is an
// epoch-keyed cache miss that re-plans against the new snapshot —
// contrast with the cache-hit path of BenchmarkQueryCached.
func BenchmarkQueryAfterApply(b *testing.B) {
	spec, err := queries.ByID("L0")
	if err != nil {
		b.Fatal(err)
	}
	db, err := dualsim.Open(storeFor(b, spec), dualsim.WithPlanCache(4))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := db.Query(ctx, spec.Text); err != nil {
		b.Fatal(err) // warm matrices and pools outside the timed loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Apply(ctx, dualsim.Delta{
			Adds: []dualsim.Triple{dualsim.T(fmt.Sprintf("upd:s%d", i), "upd:edge", fmt.Sprintf("upd:o%d", i))},
		}); err != nil {
			b.Fatal(err)
		}
		_, stats, err := db.Query(ctx, spec.Text)
		if err != nil {
			b.Fatal(err)
		}
		if stats.CacheHit {
			b.Fatal("post-update query served a stale plan")
		}
	}
}
